#include "src/compress/huffman.h"

#include <algorithm>
#include <queue>

namespace minicrypt {

namespace {

// Standard two-queue Huffman tree build producing depths; depths beyond the
// limit are repaired by the Kraft-fixup pass below.
struct HuffNode {
  uint64_t freq;
  int left = -1;
  int right = -1;
  int symbol = -1;  // leaf only
};

void AssignDepths(const std::vector<HuffNode>& nodes, int root, int depth,
                  std::vector<uint8_t>* lengths) {
  const HuffNode& nd = nodes[static_cast<size_t>(root)];
  if (nd.symbol >= 0) {
    (*lengths)[static_cast<size_t>(nd.symbol)] =
        static_cast<uint8_t>(std::max(depth, 1));
    return;
  }
  AssignDepths(nodes, nd.left, depth + 1, lengths);
  AssignDepths(nodes, nd.right, depth + 1, lengths);
}

}  // namespace

std::vector<uint8_t> BuildHuffmanLengths(const std::vector<uint64_t>& freqs) {
  const size_t n = freqs.size();
  std::vector<uint8_t> lengths(n, 0);

  std::vector<HuffNode> nodes;
  using QItem = std::pair<uint64_t, int>;  // (freq, node index)
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  for (size_t i = 0; i < n; ++i) {
    if (freqs[i] > 0) {
      nodes.push_back({freqs[i], -1, -1, static_cast<int>(i)});
      pq.emplace(freqs[i], static_cast<int>(nodes.size() - 1));
    }
  }
  if (nodes.empty()) {
    return lengths;
  }
  if (nodes.size() == 1) {
    lengths[static_cast<size_t>(nodes[0].symbol)] = 1;
    return lengths;
  }
  while (pq.size() > 1) {
    auto [fa, a] = pq.top();
    pq.pop();
    auto [fb, b] = pq.top();
    pq.pop();
    nodes.push_back({fa + fb, a, b, -1});
    pq.emplace(fa + fb, static_cast<int>(nodes.size() - 1));
  }
  AssignDepths(nodes, pq.top().second, 0, &lengths);

  // Depth-limit fixup: clamp overlong codes and restore the Kraft equality by
  // demoting the deepest codes until sum(2^-len) <= 1.
  bool clamped = false;
  for (auto& len : lengths) {
    if (len > kHuffmanMaxBits) {
      len = kHuffmanMaxBits;
      clamped = true;
    }
  }
  if (clamped) {
    auto kraft = [&] {
      uint64_t k = 0;  // scaled by 2^kHuffmanMaxBits
      for (uint8_t len : lengths) {
        if (len > 0) {
          k += 1ULL << (kHuffmanMaxBits - len);
        }
      }
      return k;
    };
    // While oversubscribed, lengthen the shortest-frequency / deepest codes.
    while (kraft() > (1ULL << kHuffmanMaxBits)) {
      // Find a symbol with len < max and the smallest frequency to demote.
      size_t best = lengths.size();
      for (size_t i = 0; i < lengths.size(); ++i) {
        if (lengths[i] > 0 && lengths[i] < kHuffmanMaxBits &&
            (best == lengths.size() || freqs[i] < freqs[best])) {
          best = i;
        }
      }
      lengths[best]++;
    }
  }
  return lengths;
}

HuffmanEncoder::HuffmanEncoder(const std::vector<uint8_t>& lengths)
    : codes_(lengths.size(), 0), lengths_(lengths) {
  // Canonical code assignment: symbols sorted by (length, symbol index).
  uint32_t code = 0;
  for (int len = 1; len <= kHuffmanMaxBits; ++len) {
    for (size_t s = 0; s < lengths.size(); ++s) {
      if (lengths[s] == len) {
        codes_[s] = static_cast<uint16_t>(code++);
      }
    }
    code <<= 1;
  }
}

void HuffmanEncoder::Encode(BitWriter* w, unsigned symbol) const {
  w->Write(codes_[symbol], lengths_[symbol]);
}

Result<HuffmanDecoder> HuffmanDecoder::Make(const std::vector<uint8_t>& lengths) {
  HuffmanDecoder d;
  uint64_t kraft = 0;
  for (uint8_t len : lengths) {
    if (len > kHuffmanMaxBits) {
      return Status::Corruption("huffman: length exceeds limit");
    }
    if (len > 0) {
      d.count_[len]++;
      kraft += 1ULL << (kHuffmanMaxBits - len);
    }
  }
  if (kraft > (1ULL << kHuffmanMaxBits)) {
    return Status::Corruption("huffman: oversubscribed code");
  }
  d.symbols_.reserve(lengths.size());
  for (int len = 1; len <= kHuffmanMaxBits; ++len) {
    for (size_t s = 0; s < lengths.size(); ++s) {
      if (lengths[s] == len) {
        d.symbols_.push_back(static_cast<uint16_t>(s));
      }
    }
  }
  uint32_t code = 0;
  uint32_t index = 0;
  for (int len = 1; len <= kHuffmanMaxBits; ++len) {
    d.first_code_[len] = code;
    d.first_index_[len] = index;
    code = (code + d.count_[len]) << 1;
    index += d.count_[len];
  }
  return d;
}

Result<unsigned> HuffmanDecoder::Decode(BitReader* r) const {
  uint32_t code = 0;
  for (int len = 1; len <= kHuffmanMaxBits; ++len) {
    const int bit = r->ReadBit();
    if (bit < 0) {
      return Status::Corruption("huffman: bitstream underrun");
    }
    code = (code << 1) | static_cast<uint32_t>(bit);
    if (count_[len] > 0 && code < first_code_[len] + count_[len] && code >= first_code_[len]) {
      return symbols_[first_index_[len] + (code - first_code_[len])];
    }
  }
  return Status::Corruption("huffman: invalid code");
}

}  // namespace minicrypt
