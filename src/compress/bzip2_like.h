// Bzip2Like: a from-scratch block-sorting codec in the bzip2 family:
// BWT -> move-to-front -> zero-run-length -> canonical Huffman.
//
// Occupies the "slow, highest ratio" position of the codec survey (the paper
// notes bz2/lzma trade speed for ratio, §3). Blocks are 256 KiB.

#ifndef MINICRYPT_SRC_COMPRESS_BZIP2_LIKE_H_
#define MINICRYPT_SRC_COMPRESS_BZIP2_LIKE_H_

#include "src/compress/compressor.h"

namespace minicrypt {

class Bzip2LikeCompressor : public Compressor {
 public:
  explicit Bzip2LikeCompressor(size_t block_size = 256 * 1024) : block_size_(block_size) {}

  std::string_view Name() const override { return "bzip2like"; }
  Result<std::string> Compress(std::string_view input) const override;
  Result<std::string> Decompress(std::string_view input) const override;

 private:
  size_t block_size_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMPRESS_BZIP2_LIKE_H_
