#include "src/compress/snappy_like.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/common/coding.h"

namespace minicrypt {

namespace {

// Element tags (low 2 bits of the tag byte).
constexpr unsigned kTagLiteral = 0x00;
constexpr unsigned kTagCopy = 0x01;

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatchPerElement = 64;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 14;
constexpr size_t kHashSize = 1u << kHashBits;

uint32_t Load32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint32_t Hash4(uint32_t v) { return (v * 0x9e3779b1u) >> (32 - kHashBits); }

// Literal element: tag byte (len-1 in the upper 6 bits when len <= 60, else a
// marker + varint), followed by the literal bytes.
void EmitLiteral(std::string* out, std::string_view lit) {
  if (lit.empty()) {
    return;
  }
  if (lit.size() <= 60) {
    out->push_back(static_cast<char>(((lit.size() - 1) << 2) | kTagLiteral));
  } else {
    out->push_back(static_cast<char>((61 << 2) | kTagLiteral));
    PutVarint64(out, lit.size() - 1);
  }
  out->append(lit);
}

// Copy element: tag byte (len-4 in the upper 6 bits, len in [4, 64]),
// followed by a 2-byte little-endian offset.
void EmitCopy(std::string* out, size_t offset, size_t len) {
  while (len > 0) {
    size_t chunk = len;
    if (chunk > kMaxMatchPerElement) {
      // Keep the remainder at least kMinMatch so every element is encodable.
      chunk = (len - kMaxMatchPerElement >= kMinMatch) ? kMaxMatchPerElement
                                                       : len - kMinMatch;
    }
    out->push_back(static_cast<char>(((chunk - kMinMatch) << 2) | kTagCopy));
    out->push_back(static_cast<char>(offset & 0xff));
    out->push_back(static_cast<char>(offset >> 8));
    len -= chunk;
  }
}

}  // namespace

Result<std::string> SnappyLikeCompressor::Compress(std::string_view input) const {
  std::string out;
  PutVarint64(&out, input.size());
  if (input.empty()) {
    return out;
  }

  std::vector<int64_t> table(kHashSize, -1);
  const char* base = input.data();
  const size_t n = input.size();
  const size_t match_limit = n >= kMinMatch ? n - kMinMatch : 0;
  size_t anchor = 0;
  size_t pos = 0;
  // Skip acceleration: after 32 consecutive probe misses the stride becomes 2,
  // after 64 it becomes 3, etc. — incompressible data is scanned, not hashed
  // byte-by-byte.
  size_t misses = 0;

  while (pos < match_limit) {
    const uint32_t h = Hash4(Load32(base + pos));
    const int64_t cand = table[h];
    table[h] = static_cast<int64_t>(pos);
    if (cand >= 0 && pos - static_cast<size_t>(cand) <= kMaxOffset &&
        Load32(base + cand) == Load32(base + pos)) {
      size_t match_len = kMinMatch;
      while (pos + match_len < n &&
             base[cand + static_cast<int64_t>(match_len)] == base[pos + match_len]) {
        ++match_len;
      }
      EmitLiteral(&out, input.substr(anchor, pos - anchor));
      EmitCopy(&out, pos - static_cast<size_t>(cand), match_len);
      pos += match_len;
      anchor = pos;
      misses = 0;
    } else {
      ++misses;
      // Bounded skip acceleration: long literal stretches are scanned with a
      // growing stride, capped so cross-row matches ~1 KiB apart are still
      // found.
      pos += 1 + std::min<size_t>(misses / 32, 3);
    }
  }

  EmitLiteral(&out, input.substr(anchor));
  return out;
}

Result<std::string> SnappyLikeCompressor::Decompress(std::string_view input) const {
  std::string_view in = input;
  MC_ASSIGN_OR_RETURN(uint64_t raw_size, GetVarint64(&in));
  if (raw_size > (1ULL << 32)) {
    return Status::Corruption("snappylike: oversized frame");
  }
  std::string out;
  out.reserve(raw_size);

  while (!in.empty()) {
    const auto tag = static_cast<unsigned char>(in.front());
    in.remove_prefix(1);
    if ((tag & 0x03) == kTagLiteral) {
      size_t len = (tag >> 2) + 1;
      if ((tag >> 2) == 61) {
        MC_ASSIGN_OR_RETURN(uint64_t ext, GetVarint64(&in));
        len = ext + 1;
      }
      if (in.size() < len) {
        return Status::Corruption("snappylike: truncated literal");
      }
      out.append(in.data(), len);
      in.remove_prefix(len);
    } else if ((tag & 0x03) == kTagCopy) {
      const size_t len = (tag >> 2) + kMinMatch;
      if (in.size() < 2) {
        return Status::Corruption("snappylike: truncated offset");
      }
      const size_t offset = static_cast<unsigned char>(in[0]) |
                            (static_cast<size_t>(static_cast<unsigned char>(in[1])) << 8);
      in.remove_prefix(2);
      if (offset == 0 || offset > out.size()) {
        return Status::Corruption("snappylike: bad offset");
      }
      const size_t src = out.size() - offset;
      for (size_t i = 0; i < len; ++i) {
        out.push_back(out[src + i]);
      }
    } else {
      return Status::Corruption("snappylike: unknown tag");
    }
    if (out.size() > raw_size) {
      return Status::Corruption("snappylike: output overruns declared size");
    }
  }
  if (out.size() != raw_size) {
    return Status::Corruption("snappylike: size mismatch");
  }
  return out;
}

}  // namespace minicrypt
