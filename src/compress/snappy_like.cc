#include "src/compress/snappy_like.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "src/common/coding.h"
#include "src/common/cpu_features.h"
#include "src/compress/simd_copy.h"
#include "src/obs/metrics.h"

#define MC_SNAPPY_X86 MC_SIMD_COPY_X86

namespace minicrypt {

namespace {

using simd_copy::kWildCopySlack;
using simd_copy::Load32;
using simd_copy::Load64;

// Element tags (low 2 bits of the tag byte).
constexpr unsigned kTagLiteral = 0x00;
constexpr unsigned kTagCopy = 0x01;

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatchPerElement = 64;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 14;
constexpr size_t kHashSize = 1u << kHashBits;

uint32_t Hash4(uint32_t v) { return (v * 0x9e3779b1u) >> (32 - kHashBits); }

// Literal element: tag byte (len-1 in the upper 6 bits when len <= 60, else a
// marker + varint), followed by the literal bytes.
void EmitLiteral(std::string* out, std::string_view lit) {
  if (lit.empty()) {
    return;
  }
  if (lit.size() <= 60) {
    out->push_back(static_cast<char>(((lit.size() - 1) << 2) | kTagLiteral));
  } else {
    out->push_back(static_cast<char>((61 << 2) | kTagLiteral));
    PutVarint64(out, lit.size() - 1);
  }
  out->append(lit);
}

// Copy element: tag byte (len-4 in the upper 6 bits, len in [4, 64]),
// followed by a 2-byte little-endian offset.
void EmitCopy(std::string* out, size_t offset, size_t len) {
  while (len > 0) {
    size_t chunk = len;
    if (chunk > kMaxMatchPerElement) {
      // Keep the remainder at least kMinMatch so every element is encodable.
      chunk = (len - kMaxMatchPerElement >= kMinMatch) ? kMaxMatchPerElement
                                                       : len - kMinMatch;
    }
    out->push_back(static_cast<char>(((chunk - kMinMatch) << 2) | kTagCopy));
    out->push_back(static_cast<char>(offset & 0xff));
    out->push_back(static_cast<char>(offset >> 8));
    len -= chunk;
  }
}

// --- Scalar reference implementation -----------------------------------------
//
// Portable path and byte-for-byte oracle for the SIMD paths below
// (tests/simd_kernels_test.cc).

Result<std::string> CompressScalar(std::string_view input) {
  std::string out;
  PutVarint64(&out, input.size());
  if (input.empty()) {
    return out;
  }

  std::vector<int64_t> table(kHashSize, -1);
  const char* base = input.data();
  const size_t n = input.size();
  const size_t match_limit = n >= kMinMatch ? n - kMinMatch : 0;
  size_t anchor = 0;
  size_t pos = 0;
  // Skip acceleration: after 32 consecutive probe misses the stride becomes 2,
  // after 64 it becomes 3, etc. — incompressible data is scanned, not hashed
  // byte-by-byte.
  size_t misses = 0;

  while (pos < match_limit) {
    const uint32_t h = Hash4(Load32(base + pos));
    const int64_t cand = table[h];
    table[h] = static_cast<int64_t>(pos);
    if (cand >= 0 && pos - static_cast<size_t>(cand) <= kMaxOffset &&
        Load32(base + cand) == Load32(base + pos)) {
      size_t match_len = kMinMatch;
      while (pos + match_len < n &&
             base[cand + static_cast<int64_t>(match_len)] == base[pos + match_len]) {
        ++match_len;
      }
      EmitLiteral(&out, input.substr(anchor, pos - anchor));
      EmitCopy(&out, pos - static_cast<size_t>(cand), match_len);
      pos += match_len;
      anchor = pos;
      misses = 0;
    } else {
      ++misses;
      // Bounded skip acceleration: long literal stretches are scanned with a
      // growing stride, capped so cross-row matches ~1 KiB apart are still
      // found.
      pos += 1 + std::min<size_t>(misses / 32, 3);
    }
  }

  EmitLiteral(&out, input.substr(anchor));
  return out;
}

Result<std::string> DecompressScalar(std::string_view input) {
  std::string_view in = input;
  MC_ASSIGN_OR_RETURN(uint64_t raw_size, GetVarint64(&in));
  if (raw_size > (1ULL << 32)) {
    return Status::Corruption("snappylike: oversized frame");
  }
  std::string out;
  out.reserve(raw_size);

  while (!in.empty()) {
    const auto tag = static_cast<unsigned char>(in.front());
    in.remove_prefix(1);
    if ((tag & 0x03) == kTagLiteral) {
      size_t len = (tag >> 2) + 1;
      if ((tag >> 2) == 61) {
        MC_ASSIGN_OR_RETURN(uint64_t ext, GetVarint64(&in));
        len = ext + 1;
      }
      if (in.size() < len) {
        return Status::Corruption("snappylike: truncated literal");
      }
      out.append(in.data(), len);
      in.remove_prefix(len);
    } else if ((tag & 0x03) == kTagCopy) {
      const size_t len = (tag >> 2) + kMinMatch;
      if (in.size() < 2) {
        return Status::Corruption("snappylike: truncated offset");
      }
      const size_t offset = static_cast<unsigned char>(in[0]) |
                            (static_cast<size_t>(static_cast<unsigned char>(in[1])) << 8);
      in.remove_prefix(2);
      if (offset == 0 || offset > out.size()) {
        return Status::Corruption("snappylike: bad offset");
      }
      const size_t src = out.size() - offset;
      for (size_t i = 0; i < len; ++i) {
        out.push_back(out[src + i]);
      }
    } else {
      return Status::Corruption("snappylike: unknown tag");
    }
    if (out.size() > raw_size) {
      return Status::Corruption("snappylike: output overruns declared size");
    }
  }
  if (out.size() != raw_size) {
    return Status::Corruption("snappylike: size mismatch");
  }
  return out;
}

#if MC_SNAPPY_X86

// --- SIMD fast paths ----------------------------------------------------------
//
// Same stream format, same match/skip decisions as the scalar path; speed
// comes from pointer-based output, wild copies, ctz match extension, and a
// generation-tagged thread-local hash table (see lz4_like.cc for the idiom).

using simd_copy::MatchCopy;
using simd_copy::PutVarint64Raw;
using simd_copy::WildCopy;
using simd_copy::WildCopy16;

struct HashTable {
  std::unique_ptr<uint64_t[]> slots;
  uint32_t generation = 0;

  uint64_t* Refresh() {
    if (slots == nullptr) {
      slots = std::make_unique<uint64_t[]>(kHashSize);
      std::memset(slots.get(), 0, kHashSize * sizeof(uint64_t));
      generation = 1;
    } else if (++generation == 0) {
      std::memset(slots.get(), 0, kHashSize * sizeof(uint64_t));
      generation = 1;
    }
    return slots.get();
  }
};

thread_local HashTable tls_snappy_table;

// Extends a confirmed 4-byte match; identical result to the scalar byte loop
// (bounded by n, unlike lz4's protected tail).
inline size_t ExtendMatch(const char* base, size_t cand, size_t pos, size_t n) {
  size_t match_len = kMinMatch;
  const char* s = base + cand + kMinMatch;
  const char* t = base + pos + kMinMatch;
  const char* t_end = base + n;
  while (t + 8 <= t_end) {
    const uint64_t diff = Load64(s) ^ Load64(t);
    if (diff != 0) {
      return match_len + static_cast<size_t>(__builtin_ctzll(diff) >> 3);
    }
    s += 8;
    t += 8;
    match_len += 8;
  }
  while (t < t_end && *s == *t) {
    ++s;
    ++t;
    ++match_len;
  }
  return match_len;
}

// Emits a literal element through a raw pointer. Wild-copies only when the
// literal run has a full chunk of input after it (the read rounds up).
inline void EmitLiteralRaw(char** op, const char* base, size_t anchor, size_t len,
                           size_t n, SimdLevel level) {
  if (len == 0) {
    return;
  }
  char* p = *op;
  if (len <= 60) {
    *p++ = static_cast<char>(((len - 1) << 2) | kTagLiteral);
  } else {
    *p++ = static_cast<char>((61 << 2) | kTagLiteral);
    PutVarint64Raw(&p, len - 1);
  }
  if (anchor + len + kWildCopySlack <= n) {
    WildCopy(p, base + anchor, len, level);
  } else {
    std::memcpy(p, base + anchor, len);
  }
  *op = p + len;
}

inline void EmitCopyRaw(char** op, size_t offset, size_t len) {
  char* p = *op;
  while (len > 0) {
    size_t chunk = len;
    if (chunk > kMaxMatchPerElement) {
      chunk = (len - kMaxMatchPerElement >= kMinMatch) ? kMaxMatchPerElement
                                                       : len - kMinMatch;
    }
    *p++ = static_cast<char>(((chunk - kMinMatch) << 2) | kTagCopy);
    *p++ = static_cast<char>(offset & 0xff);
    *p++ = static_cast<char>(offset >> 8);
    len -= chunk;
  }
  *op = p;
}

Result<std::string> CompressFast(std::string_view input, SimdLevel level) {
  std::string out;
  if (input.empty()) {
    PutVarint64(&out, 0);
    return out;
  }
  const size_t n = input.size();
  // Worst case: 64-byte copy elements are 3 bytes per >= 4 input bytes
  // (3n/4 excess is unreachable but safe), literals add 1 tag per <= 60
  // bytes plus varint markers.
  const size_t bound = n + n / 4 + n / 32 + 80 + kWildCopySlack;
  out.resize(bound);
  char* const out_base = out.data();
  char* op = out_base;
  PutVarint64Raw(&op, n);

  uint64_t* table = tls_snappy_table.Refresh();
  const uint64_t gen = static_cast<uint64_t>(tls_snappy_table.generation) << 32;
  const char* base = input.data();
  const size_t match_limit = n >= kMinMatch ? n - kMinMatch : 0;
  size_t anchor = 0;
  size_t pos = 0;
  size_t misses = 0;

  while (pos < match_limit) {
    const uint32_t h = Hash4(Load32(base + pos));
    const uint64_t slot = table[h];
    const int64_t cand = (slot & ~0xffffffffULL) == gen
                             ? static_cast<int64_t>(slot & 0xffffffffULL)
                             : -1;
    table[h] = gen | pos;
    if (cand >= 0 && pos - static_cast<size_t>(cand) <= kMaxOffset &&
        Load32(base + cand) == Load32(base + pos)) {
      const size_t match_len = ExtendMatch(base, static_cast<size_t>(cand), pos, n);
      EmitLiteralRaw(&op, base, anchor, pos - anchor, n, level);
      EmitCopyRaw(&op, pos - static_cast<size_t>(cand), match_len);
      pos += match_len;
      anchor = pos;
      misses = 0;
    } else {
      ++misses;
      pos += 1 + std::min<size_t>(misses / 32, 3);
    }
  }

  EmitLiteralRaw(&op, base, anchor, n - anchor, n, level);
  out.resize(static_cast<size_t>(op - out_base));
  return out;
}

Result<std::string> DecompressFast(std::string_view input, SimdLevel level) {
  std::string_view in = input;
  MC_ASSIGN_OR_RETURN(uint64_t raw_size, GetVarint64(&in));
  if (raw_size > (1ULL << 32)) {
    return Status::Corruption("snappylike: oversized frame");
  }
  // A copy element produces <= 64 bytes from 3 input bytes; a declared size
  // beyond ~22x the remaining input is unreachable, so the stream is corrupt.
  // Reject before zeroing a huge buffer for garbage input.
  if (raw_size > in.size() * 32 + 1024) {
    return Status::Corruption("snappylike: size mismatch");
  }
  std::string out;
  out.resize(raw_size + kWildCopySlack);
  char* const out_base = out.data();
  char* op = out_base;
  char* const op_limit = out_base + raw_size;

  while (!in.empty()) {
    const auto tag = static_cast<unsigned char>(in.front());
    in.remove_prefix(1);
    if ((tag & 0x03) == kTagLiteral) {
      size_t len = (tag >> 2) + 1;
      if ((tag >> 2) == 61) {
        MC_ASSIGN_OR_RETURN(uint64_t ext, GetVarint64(&in));
        len = ext + 1;
      }
      if (in.size() < len) {
        return Status::Corruption("snappylike: truncated literal");
      }
      if (op + len > op_limit) {
        return Status::Corruption("snappylike: output overruns declared size");
      }
      if (in.size() >= len + kWildCopySlack) {
        WildCopy(op, in.data(), len, level);
      } else {
        std::memcpy(op, in.data(), len);
      }
      op += len;
      in.remove_prefix(len);
    } else if ((tag & 0x03) == kTagCopy) {
      const size_t len = (tag >> 2) + kMinMatch;
      if (in.size() < 2) {
        return Status::Corruption("snappylike: truncated offset");
      }
      const size_t offset = static_cast<unsigned char>(in[0]) |
                            (static_cast<size_t>(static_cast<unsigned char>(in[1])) << 8);
      in.remove_prefix(2);
      if (offset == 0 || offset > static_cast<size_t>(op - out_base)) {
        return Status::Corruption("snappylike: bad offset");
      }
      if (op + len > op_limit) {
        return Status::Corruption("snappylike: output overruns declared size");
      }
      MatchCopy(op, offset, len, level);
      op += len;
    } else {
      return Status::Corruption("snappylike: unknown tag");
    }
  }
  if (op != op_limit) {
    return Status::Corruption("snappylike: size mismatch");
  }
  out.resize(raw_size);
  return out;
}

#endif  // MC_SNAPPY_X86

}  // namespace

Result<std::string> SnappyLikeCompressor::Compress(std::string_view input) const {
  const SimdLevel level = CurrentSimdLevel();
  RecordKernelDispatch(level);
#if MC_SNAPPY_X86
  // The generation-tagged table packs positions into 32 bits.
  if (level >= SimdLevel::kSse42 && input.size() < (1ULL << 31)) {
    return CompressFast(input, level);
  }
#endif
  return CompressScalar(input);
}

Result<std::string> SnappyLikeCompressor::Decompress(std::string_view input) const {
  const SimdLevel level = CurrentSimdLevel();
  RecordKernelDispatch(level);
#if MC_SNAPPY_X86
  if (level >= SimdLevel::kSse42) {
    return DecompressFast(input, level);
  }
#endif
  return DecompressScalar(input);
}

}  // namespace minicrypt
