// Strawman compression schemes from paper §2.4. These exist to reproduce the
// paper's discussion of why query-preserving compression leaks information or
// compresses poorly; MiniCrypt itself never uses them.

#ifndef MINICRYPT_SRC_COMPRESS_STRAWMAN_H_
#define MINICRYPT_SRC_COMPRESS_STRAWMAN_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/compress/compressor.h"

namespace minicrypt {

// Byte-level run-length encoding (the paper's RLE strawman operates on column
// values; this byte-level variant exposes the same leakage property: run
// lengths are visible in the output).
class RleCompressor : public Compressor {
 public:
  std::string_view Name() const override { return "rle"; }
  Result<std::string> Compress(std::string_view input) const override;
  Result<std::string> Decompress(std::string_view input) const override;
};

// Dictionary encoding over whole column values (paper §2.4's second strawman):
// a shared table maps each distinct value to a fixed-width code. The paper's
// criticisms are measurable here:
//  - ratio is poor when values are mostly distinct,
//  - the table itself can approach the size of the compressed data (Conviva:
//    ~80%),
//  - the table must be synchronized between clients.
class DictionaryEncoder {
 public:
  DictionaryEncoder() = default;

  // Adds a value to the dictionary (idempotent) and returns its code.
  uint32_t Intern(std::string_view value);

  // Encodes a value; the value must have been interned.
  Result<std::string> Encode(std::string_view value) const;

  // Decodes a fixed-width code back to the value.
  Result<std::string> Decode(std::string_view code) const;

  // Serialized size of the shared table clients must hold (paper's "80% of
  // the compressed data" observation).
  size_t TableBytes() const;

  size_t DistinctValues() const { return by_value_.size(); }

  // Bytes per code (fixed-width, grows with table size).
  size_t CodeWidth() const;

 private:
  std::map<std::string, uint32_t, std::less<>> by_value_;
  std::vector<std::string_view> by_code_;  // views into by_value_ keys
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMPRESS_STRAWMAN_H_
