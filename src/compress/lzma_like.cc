#include "src/compress/lzma_like.h"

#include <zlib.h>

#include <cstring>
#include <vector>

#include "src/common/coding.h"

namespace minicrypt {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 258;
constexpr size_t kWindowBits = 20;  // 1 MiB
constexpr size_t kMaxDistance = 1u << kWindowBits;
constexpr int kHashBits = 17;
constexpr size_t kHashSize = 1u << kHashBits;
constexpr int kChainDepth = 48;
constexpr uint16_t kProbInit = 1024;  // probabilities are 11-bit (0..2048)
constexpr int kProbMoveBits = 5;
constexpr int kNumLiteralContexts = 16;  // order-1 on the previous byte's high nibble

uint32_t Load32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint32_t Hash4(uint32_t v) { return (v * 2654435761u) >> (32 - kHashBits); }

// --- Binary range coder (LZMA-style carry-propagating encoder) --------------

class RangeEncoder {
 public:
  explicit RangeEncoder(std::string* out) : out_(out) {}

  void EncodeBit(uint16_t* prob, int bit) {
    const uint32_t bound = (range_ >> 11) * *prob;
    if (bit == 0) {
      range_ = bound;
      *prob = static_cast<uint16_t>(*prob + ((2048 - *prob) >> kProbMoveBits));
    } else {
      low_ += bound;
      range_ -= bound;
      *prob = static_cast<uint16_t>(*prob - (*prob >> kProbMoveBits));
    }
    Normalize();
  }

  // Bits with no model (probability 1/2), MSB first.
  void EncodeDirect(uint32_t value, int nbits) {
    for (int i = nbits - 1; i >= 0; --i) {
      range_ >>= 1;
      if ((value >> i) & 1) {
        low_ += range_;
      }
      Normalize();
    }
  }

  void Flush() {
    for (int i = 0; i < 5; ++i) {
      ShiftLow();
    }
  }

 private:
  void Normalize() {
    while (range_ < (1u << 24)) {
      range_ <<= 8;
      ShiftLow();
    }
  }

  void ShiftLow() {
    if (static_cast<uint32_t>(low_) < 0xFF000000u || (low_ >> 32) != 0) {
      uint8_t carry_byte = cache_;
      do {
        out_->push_back(static_cast<char>(carry_byte + static_cast<uint8_t>(low_ >> 32)));
        carry_byte = 0xFF;
      } while (--cache_size_ != 0);
      cache_ = static_cast<uint8_t>(low_ >> 24);
    }
    ++cache_size_;
    low_ = static_cast<uint32_t>(low_) << 8;
  }

  std::string* out_;
  uint64_t low_ = 0;
  uint32_t range_ = 0xFFFFFFFFu;
  uint8_t cache_ = 0;
  uint64_t cache_size_ = 1;
};

class RangeDecoder {
 public:
  // The first emitted byte is always 0 (encoder cache priming); skip it.
  explicit RangeDecoder(std::string_view in) : in_(in) {
    NextByte();  // discard priming byte
    for (int i = 0; i < 4; ++i) {
      code_ = (code_ << 8) | NextByte();
    }
  }

  int DecodeBit(uint16_t* prob) {
    const uint32_t bound = (range_ >> 11) * *prob;
    int bit;
    if (code_ < bound) {
      range_ = bound;
      *prob = static_cast<uint16_t>(*prob + ((2048 - *prob) >> kProbMoveBits));
      bit = 0;
    } else {
      code_ -= bound;
      range_ -= bound;
      *prob = static_cast<uint16_t>(*prob - (*prob >> kProbMoveBits));
      bit = 1;
    }
    Normalize();
    return bit;
  }

  uint32_t DecodeDirect(int nbits) {
    uint32_t value = 0;
    for (int i = 0; i < nbits; ++i) {
      range_ >>= 1;
      uint32_t bit = 0;
      if (code_ >= range_) {
        code_ -= range_;
        bit = 1;
      }
      value = (value << 1) | bit;
      Normalize();
    }
    return value;
  }

  bool underrun() const { return underrun_; }

 private:
  void Normalize() {
    while (range_ < (1u << 24)) {
      range_ <<= 8;
      code_ = (code_ << 8) | NextByte();
    }
  }

  uint8_t NextByte() {
    if (in_.empty()) {
      underrun_ = true;
      return 0;
    }
    const auto b = static_cast<uint8_t>(in_.front());
    in_.remove_prefix(1);
    return b;
  }

  std::string_view in_;
  uint32_t range_ = 0xFFFFFFFFu;
  uint32_t code_ = 0;
  bool underrun_ = false;
};

// Bit-tree model over `Bits` bits (MSB first), 2^Bits leaves.
template <int Bits>
struct BitTree {
  uint16_t probs[1u << Bits];

  BitTree() {
    for (auto& p : probs) {
      p = kProbInit;
    }
  }

  void Encode(RangeEncoder* rc, uint32_t value) {
    uint32_t node = 1;
    for (int i = Bits - 1; i >= 0; --i) {
      const int bit = static_cast<int>((value >> i) & 1);
      rc->EncodeBit(&probs[node], bit);
      node = (node << 1) | static_cast<uint32_t>(bit);
    }
  }

  uint32_t Decode(RangeDecoder* rc) {
    uint32_t node = 1;
    for (int i = 0; i < Bits; ++i) {
      node = (node << 1) | static_cast<uint32_t>(rc->DecodeBit(&probs[node]));
    }
    return node - (1u << Bits);
  }
};

// Probability model shared by encoder and decoder (must evolve identically).
struct Model {
  uint16_t is_match = kProbInit;
  BitTree<8> literal[kNumLiteralContexts];
  BitTree<8> length;        // match length - kMinMatch (0..254)
  BitTree<5> dist_slot;     // number of significant bits of (distance - 1)
};

int LiteralContext(uint8_t prev_byte) { return prev_byte >> 4; }

// Distance coding: slot = bit_length(distance - 1); slot 0 => distance == 1;
// otherwise emit (slot - 1) direct low bits.
int DistanceSlot(uint32_t distance_minus_1) {
  int bits = 0;
  while ((1u << bits) <= distance_minus_1 && bits < 31) {
    ++bits;
  }
  return bits;  // 0 when distance_minus_1 == 0
}

}  // namespace

Result<std::string> LzmaLikeCompressor::Compress(std::string_view input) const {
  std::string out;
  PutVarint64(&out, input.size());
  // Range-coded streams truncated near the tail can decode "successfully" to
  // garbage; a checksum of the plaintext makes corruption detectable.
  PutFixed32(&out, static_cast<uint32_t>(crc32(
                       0L, reinterpret_cast<const Bytef*>(input.data()),
                       static_cast<uInt>(input.size()))));
  if (input.empty()) {
    return out;
  }

  std::vector<int64_t> head(kHashSize, -1);
  std::vector<int64_t> prev(std::min(input.size(), kMaxDistance), -1);
  const char* base = input.data();
  const size_t n = input.size();
  const size_t match_limit = n >= kMinMatch ? n - kMinMatch + 1 : 0;

  Model model;
  RangeEncoder rc(&out);
  uint8_t prev_byte = 0;

  auto insert_pos = [&](size_t p) {
    if (p + kMinMatch <= n) {
      const uint32_t h = Hash4(Load32(base + p));
      prev[p % prev.size()] = head[h];
      head[h] = static_cast<int64_t>(p);
    }
  };

  size_t pos = 0;
  while (pos < n) {
    size_t best_len = 0;
    size_t best_dist = 0;
    if (pos < match_limit) {
      const uint32_t h = Hash4(Load32(base + pos));
      int64_t cand = head[h];
      int depth = kChainDepth;
      const size_t max_len = std::min(kMaxMatch, n - pos);
      while (cand >= 0 && depth-- > 0) {
        const size_t dist = pos - static_cast<size_t>(cand);
        if (dist > kMaxDistance || dist > pos) {
          break;
        }
        // Quick reject on the byte past the current best.
        if (best_len == 0 ||
            base[cand + static_cast<int64_t>(best_len)] == base[pos + best_len]) {
          size_t len = 0;
          while (len < max_len && base[cand + static_cast<int64_t>(len)] == base[pos + len]) {
            ++len;
          }
          if (len >= kMinMatch && len > best_len) {
            best_len = len;
            best_dist = dist;
            if (len == max_len) {
              break;
            }
          }
        }
        const int64_t next = prev[static_cast<size_t>(cand) % prev.size()];
        if (next >= cand) {
          break;  // stale chain entry from window wrap
        }
        cand = next;
      }
    }

    if (best_len >= kMinMatch) {
      rc.EncodeBit(&model.is_match, 1);
      model.length.Encode(&rc, static_cast<uint32_t>(best_len - kMinMatch));
      const uint32_t dm1 = static_cast<uint32_t>(best_dist - 1);
      const int slot = DistanceSlot(dm1);
      model.dist_slot.Encode(&rc, static_cast<uint32_t>(slot));
      if (slot > 1) {
        rc.EncodeDirect(dm1 & ((1u << (slot - 1)) - 1), slot - 1);
      }
      for (size_t i = 0; i < best_len; ++i) {
        insert_pos(pos + i);
      }
      pos += best_len;
      prev_byte = static_cast<uint8_t>(base[pos - 1]);
    } else {
      rc.EncodeBit(&model.is_match, 0);
      const auto byte = static_cast<uint8_t>(base[pos]);
      model.literal[LiteralContext(prev_byte)].Encode(&rc, byte);
      insert_pos(pos);
      prev_byte = byte;
      ++pos;
    }
  }
  rc.Flush();
  return out;
}

Result<std::string> LzmaLikeCompressor::Decompress(std::string_view input) const {
  std::string_view in = input;
  MC_ASSIGN_OR_RETURN(uint64_t raw_size, GetVarint64(&in));
  if (raw_size > (1ULL << 32)) {
    return Status::Corruption("lzmalike: oversized frame");
  }
  MC_ASSIGN_OR_RETURN(uint32_t expected_crc, GetFixed32(&in));
  std::string out;
  out.reserve(raw_size);
  if (raw_size == 0) {
    if (expected_crc != 0) {
      return Status::Corruption("lzmalike: bad checksum on empty frame");
    }
    return out;
  }

  Model model;
  RangeDecoder rc(in);
  uint8_t prev_byte = 0;

  while (out.size() < raw_size) {
    if (rc.underrun()) {
      return Status::Corruption("lzmalike: truncated stream");
    }
    if (rc.DecodeBit(&model.is_match) == 0) {
      const auto byte = static_cast<uint8_t>(model.literal[LiteralContext(prev_byte)].Decode(&rc));
      out.push_back(static_cast<char>(byte));
      prev_byte = byte;
    } else {
      const size_t len = model.length.Decode(&rc) + kMinMatch;
      const int slot = static_cast<int>(model.dist_slot.Decode(&rc));
      uint32_t dm1 = 0;
      if (slot == 1) {
        dm1 = 1;
      } else if (slot > 1) {
        dm1 = (1u << (slot - 1)) | rc.DecodeDirect(slot - 1);
      }
      const size_t dist = static_cast<size_t>(dm1) + 1;
      if (dist > out.size()) {
        return Status::Corruption("lzmalike: bad distance");
      }
      if (out.size() + len > raw_size) {
        return Status::Corruption("lzmalike: match overruns declared size");
      }
      const size_t src = out.size() - dist;
      for (size_t i = 0; i < len; ++i) {
        out.push_back(out[src + i]);
      }
      prev_byte = static_cast<uint8_t>(out.back());
    }
  }
  const auto actual_crc = static_cast<uint32_t>(crc32(
      0L, reinterpret_cast<const Bytef*>(out.data()), static_cast<uInt>(out.size())));
  if (actual_crc != expected_crc) {
    return Status::Corruption("lzmalike: checksum mismatch");
  }
  return out;
}

}  // namespace minicrypt
