// Lz4Like: a from-scratch byte-aligned LZ77 codec in the style of LZ4.
//
// Greedy parse with a 16-bit offset window, 4-byte minimum match, hash-table
// match finder, and a token byte carrying 4-bit literal/match length nibbles
// with 255-extension bytes. Occupies the "fast, modest ratio" position in the
// codec survey (paper Figure 2 runs lz4 among its five algorithms).

#ifndef MINICRYPT_SRC_COMPRESS_LZ4_LIKE_H_
#define MINICRYPT_SRC_COMPRESS_LZ4_LIKE_H_

#include "src/compress/compressor.h"

namespace minicrypt {

class Lz4LikeCompressor : public Compressor {
 public:
  std::string_view Name() const override { return "lz4like"; }
  Result<std::string> Compress(std::string_view input) const override;
  Result<std::string> Decompress(std::string_view input) const override;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMPRESS_LZ4_LIKE_H_
