// LzmaLike: a from-scratch LZ77 + adaptive-binary-range-coder codec in the
// LZMA family: hash-chain match finder over a 1 MiB window, and an arithmetic
// (range) coder with adaptive 11-bit bit models for literals, lengths, and
// distance slots.
//
// Occupies the "slowest, high ratio, big window" position of the codec survey
// (paper §3 cites lzma's ratio/speed trade-off).

#ifndef MINICRYPT_SRC_COMPRESS_LZMA_LIKE_H_
#define MINICRYPT_SRC_COMPRESS_LZMA_LIKE_H_

#include "src/compress/compressor.h"

namespace minicrypt {

class LzmaLikeCompressor : public Compressor {
 public:
  std::string_view Name() const override { return "lzmalike"; }
  Result<std::string> Compress(std::string_view input) const override;
  Result<std::string> Decompress(std::string_view input) const override;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMPRESS_LZMA_LIKE_H_
