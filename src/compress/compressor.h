// Compressor interface and registry.
//
// MiniCrypt is codec-agnostic (paper §2.4, §3): packs are compressed with any
// registered codec before encryption. This repo ships five general-purpose
// codecs occupying the ratio/speed trade-off positions the paper surveys
// (snappy-like, lz4-like, zlib, bzip2-like, lzma-like), plus two strawman
// codecs (RLE, dictionary) used only to reproduce the §2.4 discussion.
//
// Framing: every codec's output is self-describing — Decompress needs no
// out-of-band length. Implementations must round-trip arbitrary bytes.

#ifndef MINICRYPT_SRC_COMPRESS_COMPRESSOR_H_
#define MINICRYPT_SRC_COMPRESS_COMPRESSOR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace minicrypt {

class Compressor {
 public:
  virtual ~Compressor() = default;

  // Stable codec name ("zlib", "lz4like", "snappylike", "bzip2like", "lzmalike").
  virtual std::string_view Name() const = 0;

  // Compresses `input` into a self-framed buffer.
  virtual Result<std::string> Compress(std::string_view input) const = 0;

  // Inverse of Compress. Returns Corruption on malformed input.
  virtual Result<std::string> Decompress(std::string_view input) const = 0;
};

// Returns the codec registered under `name`, or nullptr. The returned pointer
// is owned by the registry and valid for the process lifetime. Thread-safe.
const Compressor* FindCompressor(std::string_view name);

// Names of all registered general-purpose codecs, in ratio/speed survey order
// (fastest/lowest-ratio first). Excludes strawmen.
std::vector<std::string_view> AllCompressorNames();

// The codec MiniCrypt uses by default (paper §3 chooses zlib).
const Compressor* DefaultCompressor();

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMPRESS_COMPRESSOR_H_
