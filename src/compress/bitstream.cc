#include "src/compress/bitstream.h"

namespace minicrypt {

void BitWriter::Write(uint64_t bits, int nbits) {
  acc_ = (acc_ << nbits) | (bits & ((nbits == 64 ? 0 : (1ULL << nbits)) - 1));
  acc_bits_ += nbits;
  while (acc_bits_ >= 8) {
    acc_bits_ -= 8;
    out_->push_back(static_cast<char>((acc_ >> acc_bits_) & 0xff));
  }
}

void BitWriter::Finish() {
  if (acc_bits_ > 0) {
    out_->push_back(static_cast<char>((acc_ << (8 - acc_bits_)) & 0xff));
    acc_bits_ = 0;
    acc_ = 0;
  }
}

Result<uint64_t> BitReader::Read(int nbits) {
  while (acc_bits_ < nbits) {
    if (in_.empty()) {
      return Status::Corruption("bitstream underrun");
    }
    acc_ = (acc_ << 8) | static_cast<unsigned char>(in_.front());
    in_.remove_prefix(1);
    acc_bits_ += 8;
  }
  acc_bits_ -= nbits;
  const uint64_t mask = nbits == 64 ? ~0ULL : ((1ULL << nbits) - 1);
  return (acc_ >> acc_bits_) & mask;
}

int BitReader::ReadBit() {
  if (acc_bits_ == 0) {
    if (in_.empty()) {
      return -1;
    }
    acc_ = static_cast<unsigned char>(in_.front());
    in_.remove_prefix(1);
    acc_bits_ = 8;
  }
  --acc_bits_;
  return static_cast<int>((acc_ >> acc_bits_) & 1);
}

}  // namespace minicrypt
