#include "src/compress/lz4_like.h"

#include <cstring>
#include <memory>
#include <vector>

#include "src/common/coding.h"
#include "src/common/cpu_features.h"
#include "src/compress/simd_copy.h"
#include "src/obs/metrics.h"

#define MC_LZ_X86 MC_SIMD_COPY_X86

namespace minicrypt {

namespace {

using simd_copy::kWildCopySlack;
using simd_copy::Load32;
using simd_copy::Load64;

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 16;
constexpr size_t kHashSize = 1u << kHashBits;
// The last bytes of the block are always emitted as literals so the decoder's
// match copy never reads past the end.
constexpr size_t kTailLiterals = 12;

uint32_t Hash4(uint32_t v) { return (v * 2654435761u) >> (32 - kHashBits); }

// Emits a length in the nibble+extensions scheme: the nibble holds
// min(len, 15); if it is 15, extension bytes of 255 follow until the
// remainder is < 255.
void PutLenExtension(std::string* out, size_t len) {
  if (len < 15) {
    return;
  }
  len -= 15;
  while (len >= 255) {
    out->push_back(static_cast<char>(0xff));
    len -= 255;
  }
  out->push_back(static_cast<char>(len));
}

Result<size_t> GetLenExtension(std::string_view* in, size_t nibble) {
  size_t len = nibble;
  if (nibble == 15) {
    for (;;) {
      if (in->empty()) {
        return Status::Corruption("lz4like: truncated length extension");
      }
      auto b = static_cast<unsigned char>(in->front());
      in->remove_prefix(1);
      len += b;
      if (b != 255) {
        break;
      }
    }
  }
  return len;
}

// --- Scalar reference implementation -----------------------------------------
//
// This is the portable path and the byte-for-byte oracle the SIMD paths are
// tested against (tests/simd_kernels_test.cc): the fast paths below must make
// the exact same match decisions and emit the exact same stream.

Result<std::string> CompressScalar(std::string_view input) {
  std::string out;
  PutVarint64(&out, input.size());
  if (input.empty()) {
    return out;
  }

  std::vector<int64_t> table(kHashSize, -1);
  const char* base = input.data();
  const size_t n = input.size();
  size_t anchor = 0;  // start of pending literal run
  size_t pos = 0;
  const size_t match_limit = n > kTailLiterals ? n - kTailLiterals : 0;

  while (pos + kMinMatch <= match_limit) {
    const uint32_t h = Hash4(Load32(base + pos));
    const int64_t cand = table[h];
    table[h] = static_cast<int64_t>(pos);
    if (cand >= 0 && pos - static_cast<size_t>(cand) <= kMaxOffset &&
        Load32(base + cand) == Load32(base + pos)) {
      // Extend the match forward as far as possible (bounded by match_limit
      // so the decoder never copies into the protected tail).
      size_t match_len = kMinMatch;
      while (pos + match_len < match_limit &&
             base[cand + static_cast<int64_t>(match_len)] == base[pos + match_len]) {
        ++match_len;
      }
      const size_t lit_len = pos - anchor;
      const size_t offset = pos - static_cast<size_t>(cand);
      const size_t ml_code = match_len - kMinMatch;
      const unsigned char token =
          static_cast<unsigned char>((lit_len < 15 ? lit_len : 15) << 4 |
                                     (ml_code < 15 ? ml_code : 15));
      out.push_back(static_cast<char>(token));
      PutLenExtension(&out, lit_len);
      out.append(base + anchor, lit_len);
      out.push_back(static_cast<char>(offset & 0xff));
      out.push_back(static_cast<char>(offset >> 8));
      PutLenExtension(&out, ml_code);
      pos += match_len;
      anchor = pos;
      // Prime the table inside the match so back-to-back repeats are found.
      if (pos + kMinMatch <= match_limit) {
        table[Hash4(Load32(base + pos - 2))] = static_cast<int64_t>(pos - 2);
      }
    } else {
      ++pos;
    }
  }

  // Final literal-only sequence (token with match nibble 0, no offset bytes
  // follow; the declared size tells the decoder when to stop).
  const size_t lit_len = n - anchor;
  const unsigned char token = static_cast<unsigned char>((lit_len < 15 ? lit_len : 15) << 4);
  out.push_back(static_cast<char>(token));
  PutLenExtension(&out, lit_len);
  out.append(base + anchor, lit_len);
  return out;
}

Result<std::string> DecompressScalar(std::string_view input) {
  std::string_view in = input;
  MC_ASSIGN_OR_RETURN(uint64_t raw_size, GetVarint64(&in));
  if (raw_size > (1ULL << 32)) {
    return Status::Corruption("lz4like: oversized frame");
  }
  std::string out;
  out.reserve(raw_size);

  while (out.size() < raw_size) {
    if (in.empty()) {
      return Status::Corruption("lz4like: truncated stream");
    }
    const auto token = static_cast<unsigned char>(in.front());
    in.remove_prefix(1);
    MC_ASSIGN_OR_RETURN(size_t lit_len, GetLenExtension(&in, token >> 4));
    if (in.size() < lit_len) {
      return Status::Corruption("lz4like: truncated literals");
    }
    out.append(in.data(), lit_len);
    in.remove_prefix(lit_len);
    if (out.size() >= raw_size) {
      break;  // final literal-only sequence
    }
    if (in.size() < 2) {
      return Status::Corruption("lz4like: truncated offset");
    }
    const size_t offset = static_cast<unsigned char>(in[0]) |
                          (static_cast<size_t>(static_cast<unsigned char>(in[1])) << 8);
    in.remove_prefix(2);
    if (offset == 0 || offset > out.size()) {
      return Status::Corruption("lz4like: bad offset");
    }
    MC_ASSIGN_OR_RETURN(size_t ml_code, GetLenExtension(&in, token & 0x0f));
    size_t match_len = ml_code + kMinMatch;
    if (out.size() + match_len > raw_size) {
      return Status::Corruption("lz4like: match overruns declared size");
    }
    // Byte-wise copy: overlapping copies (offset < match_len) must replicate.
    size_t src = out.size() - offset;
    for (size_t i = 0; i < match_len; ++i) {
      out.push_back(out[src + i]);
    }
  }
  if (out.size() != raw_size) {
    return Status::Corruption("lz4like: size mismatch");
  }
  return out;
}

#if MC_LZ_X86

// --- SIMD fast paths ----------------------------------------------------------
//
// Same stream format, same match decisions; the speed comes from (a) writing
// through raw pointers into a pre-sized buffer instead of std::string
// push_back/append, (b) 16/32-byte wild copies for literals and matches
// (src/compress/simd_copy.h), (c) 8-byte XOR + ctz match extension, and (d) a
// generation-tagged thread-local hash table so the 64 Ki-entry table is not
// reallocated and re-cleared on every Compress call.

using simd_copy::MatchCopy;
using simd_copy::WildCopy;

// Generation-tagged hash table: entry = (generation << 32) | pos. An entry
// from an older generation reads as "no candidate", so the table never needs
// clearing between packs. ~512 KiB per thread, reused for the thread's life.
struct HashTable {
  std::unique_ptr<uint64_t[]> slots;
  uint32_t generation = 0;

  uint64_t* Refresh() {
    if (slots == nullptr) {
      slots = std::make_unique<uint64_t[]>(kHashSize);
      std::memset(slots.get(), 0, kHashSize * sizeof(uint64_t));
      generation = 1;
    } else if (++generation == 0) {
      std::memset(slots.get(), 0, kHashSize * sizeof(uint64_t));
      generation = 1;
    }
    return slots.get();
  }
};

thread_local HashTable tls_lz4_table;

inline void PutLenExtensionRaw(char** op, size_t len) {
  if (len < 15) {
    return;
  }
  len -= 15;
  char* p = *op;
  while (len >= 255) {
    *p++ = static_cast<char>(0xff);
    len -= 255;
  }
  *p++ = static_cast<char>(len);
  *op = p;
}

using simd_copy::PutVarint64Raw;

// Extends a confirmed 4-byte match; identical result to the scalar byte loop.
inline size_t ExtendMatch(const char* base, size_t cand, size_t pos, size_t limit) {
  size_t match_len = kMinMatch;
  const char* s = base + cand + kMinMatch;
  const char* t = base + pos + kMinMatch;
  const char* t_end = base + limit;  // exclusive: scalar requires pos+len < limit
  while (t + 8 <= t_end) {
    const uint64_t diff = Load64(s) ^ Load64(t);
    if (diff != 0) {
      return match_len + static_cast<size_t>(__builtin_ctzll(diff) >> 3);
    }
    s += 8;
    t += 8;
    match_len += 8;
  }
  while (t < t_end && *s == *t) {
    ++s;
    ++t;
    ++match_len;
  }
  return match_len;
}

Result<std::string> CompressFast(std::string_view input, SimdLevel level) {
  std::string out;
  if (input.empty()) {
    PutVarint64(&out, 0);
    return out;
  }
  const size_t n = input.size();
  // Worst case: every sequence is a 4-byte match costing 5 bytes (n/4 excess)
  // plus length-extension bytes (1 per 255 of literals and of match length),
  // the varint header, and wild-copy slack.
  const size_t bound = n + n / 4 + n / 128 + 80 + kWildCopySlack;
  out.resize(bound);
  char* const out_base = out.data();
  char* op = out_base;
  PutVarint64Raw(&op, n);

  uint64_t* table = tls_lz4_table.Refresh();
  const uint64_t gen = static_cast<uint64_t>(tls_lz4_table.generation) << 32;
  const char* base = input.data();
  size_t anchor = 0;
  size_t pos = 0;
  const size_t match_limit = n > kTailLiterals ? n - kTailLiterals : 0;

  while (pos + kMinMatch <= match_limit) {
    const uint32_t h = Hash4(Load32(base + pos));
    const uint64_t slot = table[h];
    const int64_t cand = (slot & ~0xffffffffULL) == gen
                             ? static_cast<int64_t>(slot & 0xffffffffULL)
                             : -1;
    table[h] = gen | pos;
    if (cand >= 0 && pos - static_cast<size_t>(cand) <= kMaxOffset &&
        Load32(base + cand) == Load32(base + pos)) {
      const size_t match_len =
          ExtendMatch(base, static_cast<size_t>(cand), pos, match_limit);
      const size_t lit_len = pos - anchor;
      const size_t offset = pos - static_cast<size_t>(cand);
      const size_t ml_code = match_len - kMinMatch;
      *op++ = static_cast<char>((lit_len < 15 ? lit_len : 15) << 4 |
                                (ml_code < 15 ? ml_code : 15));
      PutLenExtensionRaw(&op, lit_len);
      if (lit_len > 0) {
        // Wild copies round the *read* up too; only safe while a full chunk
        // of input remains past the literal run.
        if (anchor + lit_len + kWildCopySlack <= n) {
          WildCopy(op, base + anchor, lit_len, level);
        } else {
          std::memcpy(op, base + anchor, lit_len);
        }
        op += lit_len;
      }
      *op++ = static_cast<char>(offset & 0xff);
      *op++ = static_cast<char>(offset >> 8);
      PutLenExtensionRaw(&op, ml_code);
      pos += match_len;
      anchor = pos;
      if (pos + kMinMatch <= match_limit) {
        table[Hash4(Load32(base + pos - 2))] = gen | (pos - 2);
      }
    } else {
      ++pos;
    }
  }

  const size_t lit_len = n - anchor;
  *op++ = static_cast<char>((lit_len < 15 ? lit_len : 15) << 4);
  PutLenExtensionRaw(&op, lit_len);
  if (lit_len > 0) {
    // The literal tail is bounded by the buffer slack, but use an exact copy:
    // the source is the end of the input, where a wild read could cross the
    // caller's buffer end.
    std::memcpy(op, base + anchor, lit_len);
    op += lit_len;
  }
  out.resize(static_cast<size_t>(op - out_base));
  return out;
}

Result<std::string> DecompressFast(std::string_view input, SimdLevel level) {
  std::string_view in = input;
  MC_ASSIGN_OR_RETURN(uint64_t raw_size, GetVarint64(&in));
  if (raw_size > (1ULL << 32)) {
    return Status::Corruption("lz4like: oversized frame");
  }
  // Each remaining input byte can contribute at most ~262 output bytes (a
  // 0xff length-extension byte adds 255); a declared size beyond that bound
  // can never be reached, so the stream is corrupt — reject before zeroing a
  // huge buffer for garbage input.
  if (raw_size > in.size() * 512 + 1024) {
    return Status::Corruption("lz4like: size mismatch");
  }
  std::string out;
  out.resize(raw_size + kWildCopySlack);
  char* const out_base = out.data();
  char* op = out_base;
  char* const op_limit = out_base + raw_size;

  while (op < op_limit) {
    if (in.empty()) {
      return Status::Corruption("lz4like: truncated stream");
    }
    const auto token = static_cast<unsigned char>(in.front());
    in.remove_prefix(1);
    MC_ASSIGN_OR_RETURN(size_t lit_len, GetLenExtension(&in, token >> 4));
    if (in.size() < lit_len) {
      return Status::Corruption("lz4like: truncated literals");
    }
    if (lit_len > 0) {
      if (op + lit_len > op_limit) {
        // The scalar path would append past raw_size, break, and fail the
        // final size check; same verdict, detected before the write.
        return Status::Corruption("lz4like: size mismatch");
      }
      // Safe to wild-copy: reading rounds up within `in` only when at least
      // a chunk of input remains; otherwise fall back to an exact copy.
      if (in.size() >= lit_len + kWildCopySlack) {
        WildCopy(op, in.data(), lit_len, level);
      } else {
        std::memcpy(op, in.data(), lit_len);
      }
      op += lit_len;
      in.remove_prefix(lit_len);
    }
    if (op >= op_limit) {
      break;  // final literal-only sequence
    }
    if (in.size() < 2) {
      return Status::Corruption("lz4like: truncated offset");
    }
    const size_t offset = static_cast<unsigned char>(in[0]) |
                          (static_cast<size_t>(static_cast<unsigned char>(in[1])) << 8);
    in.remove_prefix(2);
    if (offset == 0 || offset > static_cast<size_t>(op - out_base)) {
      return Status::Corruption("lz4like: bad offset");
    }
    MC_ASSIGN_OR_RETURN(size_t ml_code, GetLenExtension(&in, token & 0x0f));
    const size_t match_len = ml_code + kMinMatch;
    if (op + match_len > op_limit) {
      return Status::Corruption("lz4like: match overruns declared size");
    }
    MatchCopy(op, offset, match_len, level);
    op += match_len;
  }
  if (op != op_limit) {
    return Status::Corruption("lz4like: size mismatch");
  }
  out.resize(raw_size);
  return out;
}

#endif  // MC_LZ_X86

}  // namespace

Result<std::string> Lz4LikeCompressor::Compress(std::string_view input) const {
  const SimdLevel level = CurrentSimdLevel();
  RecordKernelDispatch(level);
#if MC_LZ_X86
  // The generation-tagged table packs positions into 32 bits.
  if (level >= SimdLevel::kSse42 && input.size() < (1ULL << 31)) {
    return CompressFast(input, level);
  }
#endif
  return CompressScalar(input);
}

Result<std::string> Lz4LikeCompressor::Decompress(std::string_view input) const {
  const SimdLevel level = CurrentSimdLevel();
  RecordKernelDispatch(level);
#if MC_LZ_X86
  if (level >= SimdLevel::kSse42) {
    return DecompressFast(input, level);
  }
#endif
  return DecompressScalar(input);
}

}  // namespace minicrypt
