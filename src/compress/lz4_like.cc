#include "src/compress/lz4_like.h"

#include <cstring>
#include <vector>

#include "src/common/coding.h"

namespace minicrypt {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 16;
constexpr size_t kHashSize = 1u << kHashBits;
// The last bytes of the block are always emitted as literals so the decoder's
// match copy never reads past the end.
constexpr size_t kTailLiterals = 12;

uint32_t Load32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint32_t Hash4(uint32_t v) { return (v * 2654435761u) >> (32 - kHashBits); }

// Emits a length in the nibble+extensions scheme: the nibble holds
// min(len, 15); if it is 15, extension bytes of 255 follow until the
// remainder is < 255.
void PutLenExtension(std::string* out, size_t len) {
  if (len < 15) {
    return;
  }
  len -= 15;
  while (len >= 255) {
    out->push_back(static_cast<char>(0xff));
    len -= 255;
  }
  out->push_back(static_cast<char>(len));
}

Result<size_t> GetLenExtension(std::string_view* in, size_t nibble) {
  size_t len = nibble;
  if (nibble == 15) {
    for (;;) {
      if (in->empty()) {
        return Status::Corruption("lz4like: truncated length extension");
      }
      auto b = static_cast<unsigned char>(in->front());
      in->remove_prefix(1);
      len += b;
      if (b != 255) {
        break;
      }
    }
  }
  return len;
}

}  // namespace

Result<std::string> Lz4LikeCompressor::Compress(std::string_view input) const {
  std::string out;
  PutVarint64(&out, input.size());
  if (input.empty()) {
    return out;
  }

  std::vector<int64_t> table(kHashSize, -1);
  const char* base = input.data();
  const size_t n = input.size();
  size_t anchor = 0;  // start of pending literal run
  size_t pos = 0;
  const size_t match_limit = n > kTailLiterals ? n - kTailLiterals : 0;

  while (pos + kMinMatch <= match_limit) {
    const uint32_t h = Hash4(Load32(base + pos));
    const int64_t cand = table[h];
    table[h] = static_cast<int64_t>(pos);
    if (cand >= 0 && pos - static_cast<size_t>(cand) <= kMaxOffset &&
        Load32(base + cand) == Load32(base + pos)) {
      // Extend the match forward as far as possible (bounded by match_limit
      // so the decoder never copies into the protected tail).
      size_t match_len = kMinMatch;
      while (pos + match_len < match_limit &&
             base[cand + static_cast<int64_t>(match_len)] == base[pos + match_len]) {
        ++match_len;
      }
      const size_t lit_len = pos - anchor;
      const size_t offset = pos - static_cast<size_t>(cand);
      const size_t ml_code = match_len - kMinMatch;
      const unsigned char token =
          static_cast<unsigned char>((lit_len < 15 ? lit_len : 15) << 4 |
                                     (ml_code < 15 ? ml_code : 15));
      out.push_back(static_cast<char>(token));
      PutLenExtension(&out, lit_len);
      out.append(base + anchor, lit_len);
      out.push_back(static_cast<char>(offset & 0xff));
      out.push_back(static_cast<char>(offset >> 8));
      PutLenExtension(&out, ml_code);
      pos += match_len;
      anchor = pos;
      // Prime the table inside the match so back-to-back repeats are found.
      if (pos + kMinMatch <= match_limit) {
        table[Hash4(Load32(base + pos - 2))] = static_cast<int64_t>(pos - 2);
      }
    } else {
      ++pos;
    }
  }

  // Final literal-only sequence (token with match nibble 0, no offset bytes
  // follow; the declared size tells the decoder when to stop).
  const size_t lit_len = n - anchor;
  const unsigned char token = static_cast<unsigned char>((lit_len < 15 ? lit_len : 15) << 4);
  out.push_back(static_cast<char>(token));
  PutLenExtension(&out, lit_len);
  out.append(base + anchor, lit_len);
  return out;
}

Result<std::string> Lz4LikeCompressor::Decompress(std::string_view input) const {
  std::string_view in = input;
  MC_ASSIGN_OR_RETURN(uint64_t raw_size, GetVarint64(&in));
  if (raw_size > (1ULL << 32)) {
    return Status::Corruption("lz4like: oversized frame");
  }
  std::string out;
  out.reserve(raw_size);

  while (out.size() < raw_size) {
    if (in.empty()) {
      return Status::Corruption("lz4like: truncated stream");
    }
    const auto token = static_cast<unsigned char>(in.front());
    in.remove_prefix(1);
    MC_ASSIGN_OR_RETURN(size_t lit_len, GetLenExtension(&in, token >> 4));
    if (in.size() < lit_len) {
      return Status::Corruption("lz4like: truncated literals");
    }
    out.append(in.data(), lit_len);
    in.remove_prefix(lit_len);
    if (out.size() >= raw_size) {
      break;  // final literal-only sequence
    }
    if (in.size() < 2) {
      return Status::Corruption("lz4like: truncated offset");
    }
    const size_t offset = static_cast<unsigned char>(in[0]) |
                          (static_cast<size_t>(static_cast<unsigned char>(in[1])) << 8);
    in.remove_prefix(2);
    if (offset == 0 || offset > out.size()) {
      return Status::Corruption("lz4like: bad offset");
    }
    MC_ASSIGN_OR_RETURN(size_t ml_code, GetLenExtension(&in, token & 0x0f));
    size_t match_len = ml_code + kMinMatch;
    if (out.size() + match_len > raw_size) {
      return Status::Corruption("lz4like: match overruns declared size");
    }
    // Byte-wise copy: overlapping copies (offset < match_len) must replicate.
    size_t src = out.size() - offset;
    for (size_t i = 0; i < match_len; ++i) {
      out.push_back(out[src + i]);
    }
  }
  if (out.size() != raw_size) {
    return Status::Corruption("lz4like: size mismatch");
  }
  return out;
}

}  // namespace minicrypt
