#include "src/compress/zlib_compressor.h"

#include <zlib.h>

#include "src/common/coding.h"

namespace minicrypt {

ZlibCompressor::ZlibCompressor(int level, std::string_view name) : level_(level), name_(name) {}

Result<std::string> ZlibCompressor::Compress(std::string_view input) const {
  std::string out;
  PutVarint64(&out, input.size());
  uLongf bound = compressBound(static_cast<uLong>(input.size()));
  const size_t header = out.size();
  out.resize(header + bound);
  int rc = compress2(reinterpret_cast<Bytef*>(out.data() + header), &bound,
                     reinterpret_cast<const Bytef*>(input.data()),
                     static_cast<uLong>(input.size()), level_);
  if (rc != Z_OK) {
    return Status::Internal("zlib compress2 failed rc=" + std::to_string(rc));
  }
  out.resize(header + bound);
  return out;
}

Result<std::string> ZlibCompressor::Decompress(std::string_view input) const {
  std::string_view rest = input;
  MC_ASSIGN_OR_RETURN(uint64_t raw_size, GetVarint64(&rest));
  // Reject absurd declared sizes before allocating (corrupted frame defence).
  if (raw_size > (1ULL << 32)) {
    return Status::Corruption("zlib frame declares oversized payload");
  }
  std::string out(raw_size, '\0');
  uLongf out_len = static_cast<uLongf>(raw_size);
  int rc = uncompress(reinterpret_cast<Bytef*>(out.data()), &out_len,
                      reinterpret_cast<const Bytef*>(rest.data()),
                      static_cast<uLong>(rest.size()));
  if (rc != Z_OK || out_len != raw_size) {
    return Status::Corruption("zlib uncompress failed rc=" + std::to_string(rc));
  }
  return out;
}

}  // namespace minicrypt
