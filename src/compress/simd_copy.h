// Internal SIMD copy primitives shared by the codec fast paths
// (lz4_like.cc, snappy_like.cc). x86-64 only; callers gate on
// CurrentSimdLevel() >= kSse42 so SSE2 loads are always legal, and the AVX2
// entry points carry a target attribute so the TU itself stays portable.
//
// Contract: "wild" copies round the copy length up to a full 16/32-byte
// chunk, so both the destination AND the source must have at least
// kWildCopySlack addressable bytes past the nominal range.

#ifndef MINICRYPT_SRC_COMPRESS_SIMD_COPY_H_
#define MINICRYPT_SRC_COMPRESS_SIMD_COPY_H_

#include <cstdint>
#include <cstring>

#include "src/common/cpu_features.h"

#if defined(__x86_64__)
#include <immintrin.h>
#define MC_SIMD_COPY_X86 1
#else
#define MC_SIMD_COPY_X86 0
#endif

namespace minicrypt {
namespace simd_copy {

// Buffers touched by wild copies carry this much slack past their logical end.
inline constexpr size_t kWildCopySlack = 32;

inline uint32_t Load32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t Load64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// Varint/length writers into raw buffers (the fast paths write through
// pointers instead of std::string::push_back).
inline void PutVarint64Raw(char** op, uint64_t v) {
  char* p = *op;
  while (v >= 0x80) {
    *p++ = static_cast<char>(v | 0x80);
    v >>= 7;
  }
  *p++ = static_cast<char>(v);
  *op = p;
}

#if MC_SIMD_COPY_X86

// Copies at least n bytes in 16-byte chunks; may write (and read) up to 15
// bytes past the nominal end.
inline void WildCopy16(char* dst, const char* src, size_t n) {
  const char* end = dst + n;
  do {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), v);
    dst += 16;
    src += 16;
  } while (dst < end);
}

__attribute__((target("avx2"))) inline void WildCopy32(char* dst, const char* src,
                                                       size_t n) {
  const char* end = dst + n;
  do {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), v);
    dst += 32;
    src += 32;
  } while (dst < end);
}

inline void WildCopy(char* dst, const char* src, size_t n, SimdLevel level) {
  if (level >= SimdLevel::kAvx2) {
    WildCopy32(dst, src, n);
  } else {
    WildCopy16(dst, src, n);
  }
}

// Overlap-capable backward-reference copy with slack. A wild copy of chunk
// width W is only correct when the src->dst distance is >= W (each chunk read
// must already be written); smaller offsets first double the pattern until
// the distance reaches 16, then 16-byte chunks finish the copy.
inline void MatchCopy(char* dst, size_t offset, size_t n, SimdLevel level) {
  const char* src = dst - offset;
  if (offset >= 32) {
    WildCopy(dst, src, n, level);
    return;
  }
  if (offset == 1) {
    std::memset(dst, *src, n);
    return;
  }
  if (offset < 16) {
    char* const end = dst + n;
    // Each memcpy appends one full copy of the pattern, doubling the
    // dst - src distance; at most 4 passes reach 16.
    while (static_cast<size_t>(dst - src) < 16 && dst < end) {
      const size_t d = static_cast<size_t>(dst - src);
      std::memcpy(dst, src, d);
      dst += d;
    }
    if (dst >= end) {
      return;
    }
    n = static_cast<size_t>(end - dst);
  }
  WildCopy16(dst, src, n);
}

#endif  // MC_SIMD_COPY_X86

}  // namespace simd_copy
}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMPRESS_SIMD_COPY_H_
