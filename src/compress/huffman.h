// Canonical Huffman coder over a small alphabet (<= 512 symbols), used as the
// entropy stage of Bzip2Like. Code lengths are depth-limited to 15 bits and
// serialized as a length table; codes are canonical so only lengths travel.

#ifndef MINICRYPT_SRC_COMPRESS_HUFFMAN_H_
#define MINICRYPT_SRC_COMPRESS_HUFFMAN_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/compress/bitstream.h"

namespace minicrypt {

inline constexpr int kHuffmanMaxBits = 15;

// Computes depth-limited code lengths for the given symbol frequencies.
// Symbols with zero frequency get length 0 (no code). Lengths obey Kraft.
std::vector<uint8_t> BuildHuffmanLengths(const std::vector<uint64_t>& freqs);

// Encoder: canonical codes derived from lengths.
class HuffmanEncoder {
 public:
  // `lengths[i]` is the code length for symbol i (0 = unused).
  explicit HuffmanEncoder(const std::vector<uint8_t>& lengths);

  void Encode(BitWriter* w, unsigned symbol) const;

 private:
  std::vector<uint16_t> codes_;
  std::vector<uint8_t> lengths_;
};

// Decoder: table-driven canonical decode.
class HuffmanDecoder {
 public:
  // Returns Corruption if the lengths are not a valid (sub-)Kraft code.
  static Result<HuffmanDecoder> Make(const std::vector<uint8_t>& lengths);

  // Decodes one symbol; Corruption on underrun or invalid code.
  Result<unsigned> Decode(BitReader* r) const;

 private:
  HuffmanDecoder() = default;

  // first_code_[len], first_index_[len]: canonical decode tables.
  uint32_t first_code_[kHuffmanMaxBits + 2] = {};
  uint32_t first_index_[kHuffmanMaxBits + 2] = {};
  uint32_t count_[kHuffmanMaxBits + 2] = {};
  std::vector<uint16_t> symbols_;  // symbols sorted by (length, symbol)
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMPRESS_HUFFMAN_H_
