// SnappyLike: a from-scratch fast LZ codec in the style of Snappy.
//
// Differences from Lz4Like that place it at the "fastest, lowest ratio" end:
// a smaller hash table, skip-acceleration on incompressible regions (the
// probe stride grows while no matches are found), and matches capped at 64
// bytes per copy element.

#ifndef MINICRYPT_SRC_COMPRESS_SNAPPY_LIKE_H_
#define MINICRYPT_SRC_COMPRESS_SNAPPY_LIKE_H_

#include "src/compress/compressor.h"

namespace minicrypt {

class SnappyLikeCompressor : public Compressor {
 public:
  std::string_view Name() const override { return "snappylike"; }
  Result<std::string> Compress(std::string_view input) const override;
  Result<std::string> Decompress(std::string_view input) const override;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMPRESS_SNAPPY_LIKE_H_
