#include "src/compress/strawman.h"

#include "src/common/coding.h"

namespace minicrypt {

Result<std::string> RleCompressor::Compress(std::string_view input) const {
  std::string out;
  PutVarint64(&out, input.size());
  size_t i = 0;
  while (i < input.size()) {
    const char byte = input[i];
    size_t run = 1;
    while (i + run < input.size() && input[i + run] == byte && run < 0xFFFFFF) {
      ++run;
    }
    PutVarint64(&out, run);
    out.push_back(byte);
    i += run;
  }
  return out;
}

Result<std::string> RleCompressor::Decompress(std::string_view input) const {
  std::string_view in = input;
  MC_ASSIGN_OR_RETURN(uint64_t total, GetVarint64(&in));
  if (total > (1ULL << 32)) {
    return Status::Corruption("rle: oversized frame");
  }
  std::string out;
  out.reserve(total);
  while (out.size() < total) {
    MC_ASSIGN_OR_RETURN(uint64_t run, GetVarint64(&in));
    if (in.empty() || run == 0 || out.size() + run > total) {
      return Status::Corruption("rle: malformed run");
    }
    out.append(run, in.front());
    in.remove_prefix(1);
  }
  return out;
}

uint32_t DictionaryEncoder::Intern(std::string_view value) {
  auto it = by_value_.find(value);
  if (it != by_value_.end()) {
    return it->second;
  }
  const auto code = static_cast<uint32_t>(by_code_.size());
  auto [pos, inserted] = by_value_.emplace(std::string(value), code);
  by_code_.push_back(pos->first);
  return code;
}

size_t DictionaryEncoder::CodeWidth() const {
  const size_t n = by_code_.size();
  if (n <= 0xFF) {
    return 1;
  }
  if (n <= 0xFFFF) {
    return 2;
  }
  if (n <= 0xFFFFFF) {
    return 3;
  }
  return 4;
}

Result<std::string> DictionaryEncoder::Encode(std::string_view value) const {
  auto it = by_value_.find(value);
  if (it == by_value_.end()) {
    return Status::NotFound("value not in dictionary");
  }
  const size_t width = CodeWidth();
  std::string out(width, '\0');
  uint32_t code = it->second;
  for (size_t i = 0; i < width; ++i) {
    out[i] = static_cast<char>(code >> (8 * i));
  }
  return out;
}

Result<std::string> DictionaryEncoder::Decode(std::string_view code_bytes) const {
  if (code_bytes.size() != CodeWidth()) {
    return Status::Corruption("dictionary: wrong code width");
  }
  uint32_t code = 0;
  for (size_t i = 0; i < code_bytes.size(); ++i) {
    code |= static_cast<uint32_t>(static_cast<unsigned char>(code_bytes[i])) << (8 * i);
  }
  if (code >= by_code_.size()) {
    return Status::Corruption("dictionary: code out of range");
  }
  return std::string(by_code_[code]);
}

size_t DictionaryEncoder::TableBytes() const {
  size_t bytes = 0;
  for (const auto& [value, code] : by_value_) {
    bytes += VarintLength(value.size()) + value.size() + CodeWidth();
  }
  return bytes;
}

}  // namespace minicrypt
