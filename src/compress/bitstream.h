// MSB-first bit writer/reader used by the Huffman stage of Bzip2Like and the
// range-coded LzmaLike codec's header.

#ifndef MINICRYPT_SRC_COMPRESS_BITSTREAM_H_
#define MINICRYPT_SRC_COMPRESS_BITSTREAM_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace minicrypt {

class BitWriter {
 public:
  explicit BitWriter(std::string* out) : out_(out) {}

  // Writes the low `nbits` bits of `bits`, MSB first. nbits <= 57.
  void Write(uint64_t bits, int nbits);

  // Pads the final partial byte with zeros and flushes it.
  void Finish();

 private:
  std::string* out_;
  uint64_t acc_ = 0;
  int acc_bits_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::string_view in) : in_(in) {}

  // Reads `nbits` bits MSB-first. nbits <= 57. Corruption on underrun.
  Result<uint64_t> Read(int nbits);

  // Reads a single bit; -1 on underrun (cheap inner-loop variant).
  int ReadBit();

 private:
  std::string_view in_;
  uint64_t acc_ = 0;
  int acc_bits_ = 0;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMPRESS_BITSTREAM_H_
