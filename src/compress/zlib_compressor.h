// zlib-backed codec (the codec MiniCrypt ships as its default, paper §3).

#ifndef MINICRYPT_SRC_COMPRESS_ZLIB_COMPRESSOR_H_
#define MINICRYPT_SRC_COMPRESS_ZLIB_COMPRESSOR_H_

#include "src/compress/compressor.h"

namespace minicrypt {

class ZlibCompressor : public Compressor {
 public:
  // level in [1, 9]; 6 is the zlib default used for the "zlib" registry entry.
  explicit ZlibCompressor(int level = 6, std::string_view name = "zlib");

  std::string_view Name() const override { return name_; }
  Result<std::string> Compress(std::string_view input) const override;
  Result<std::string> Decompress(std::string_view input) const override;

 private:
  int level_;
  std::string name_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_COMPRESS_ZLIB_COMPRESSOR_H_
