#include "src/compress/bwt.h"

#include <algorithm>
#include <numeric>

namespace minicrypt {

namespace {

// Suffix array of `s` + virtual sentinel (smaller than every byte) using
// prefix doubling with radix/counting sorts: O(n log n).
// Returns SA over indices [0, n] where index n is the sentinel suffix
// (always first in the returned array).
std::vector<uint32_t> BuildSuffixArray(std::string_view s) {
  const size_t n = s.size() + 1;  // includes sentinel position
  std::vector<uint32_t> sa(n);
  std::vector<uint32_t> rank(n);
  std::vector<uint32_t> tmp(n);
  std::vector<uint32_t> cnt(std::max<size_t>(n, 257), 0);

  // Initial ranks: sentinel = 0, byte b = b + 1.
  for (size_t i = 0; i < n; ++i) {
    rank[i] = i + 1 == n ? 0 : static_cast<uint32_t>(static_cast<unsigned char>(s[i])) + 1;
  }
  // Counting sort by initial rank.
  std::fill(cnt.begin(), cnt.begin() + 257, 0);
  for (size_t i = 0; i < n; ++i) {
    cnt[rank[i]]++;
  }
  for (size_t i = 1; i < 257; ++i) {
    cnt[i] += cnt[i - 1];
  }
  for (size_t i = n; i-- > 0;) {
    sa[--cnt[rank[i]]] = static_cast<uint32_t>(i);
  }

  std::vector<uint32_t> new_rank(n);
  for (size_t k = 1;; k <<= 1) {
    // Sort by (rank[i], rank[i+k]) using two stable passes.
    // Pass 1: suffixes whose i+k wraps sort first on the second key; produce
    // the order of "second key" by shifting the current SA left by k.
    size_t p = 0;
    for (size_t i = n - k; i < n; ++i) {
      tmp[p++] = static_cast<uint32_t>(i);
    }
    for (size_t i = 0; i < n; ++i) {
      if (sa[i] >= k) {
        tmp[p++] = sa[i] - static_cast<uint32_t>(k);
      }
    }
    // Pass 2: stable counting sort by first key.
    std::fill(cnt.begin(), cnt.begin() + n, 0);
    for (size_t i = 0; i < n; ++i) {
      cnt[rank[i]]++;
    }
    for (size_t i = 1; i < n; ++i) {
      cnt[i] += cnt[i - 1];
    }
    for (size_t i = n; i-- > 0;) {
      sa[--cnt[rank[tmp[i]]]] = tmp[i];
    }
    // Re-rank.
    new_rank[sa[0]] = 0;
    uint32_t r = 0;
    for (size_t i = 1; i < n; ++i) {
      const uint32_t a = sa[i - 1];
      const uint32_t b = sa[i];
      const uint32_t a2 = a + k < n ? rank[a + k] + 1 : 0;
      const uint32_t b2 = b + k < n ? rank[b + k] + 1 : 0;
      if (rank[a] != rank[b] || a2 != b2) {
        ++r;
      }
      new_rank[b] = r;
    }
    rank.swap(new_rank);
    if (r + 1 == n) {
      break;  // all ranks distinct
    }
  }
  return sa;
}

}  // namespace

BwtResult BwtForward(std::string_view input) {
  BwtResult out;
  if (input.empty()) {
    out.primary_index = 0;
    return out;
  }
  const std::vector<uint32_t> sa = BuildSuffixArray(input);
  const size_t rows = sa.size();  // n + 1
  out.transformed.reserve(input.size());
  out.primary_index = 0;
  for (size_t i = 0; i < rows; ++i) {
    if (sa[i] == 0) {
      // This row's BWT char is the sentinel; record and omit it.
      out.primary_index = static_cast<uint32_t>(i);
    } else {
      out.transformed.push_back(input[sa[i] - 1]);
    }
  }
  return out;
}

Result<std::string> BwtInverse(std::string_view transformed, uint32_t primary_index) {
  const size_t n = transformed.size();
  if (n == 0) {
    if (primary_index != 0) {
      return Status::Corruption("bwt: bad primary index for empty block");
    }
    return std::string();
  }
  const size_t rows = n + 1;
  if (primary_index >= rows) {
    return Status::Corruption("bwt: primary index out of range");
  }
  // L' over alphabet {0 = sentinel, b+1 = byte b}, sentinel at primary_index.
  std::vector<uint16_t> lcol(rows);
  for (size_t i = 0, j = 0; i < rows; ++i) {
    if (i == primary_index) {
      lcol[i] = 0;
    } else {
      lcol[i] = static_cast<uint16_t>(static_cast<unsigned char>(transformed[j++])) + 1;
    }
  }
  // LF mapping: lf[i] = C[lcol[i]] + (occurrences of lcol[i] in lcol[0..i)).
  uint32_t counts[257] = {};
  for (size_t i = 0; i < rows; ++i) {
    counts[lcol[i]]++;
  }
  uint32_t c_cum[257];
  uint32_t acc = 0;
  for (int c = 0; c < 257; ++c) {
    c_cum[c] = acc;
    acc += counts[c];
  }
  std::vector<uint32_t> lf(rows);
  uint32_t seen[257] = {};
  for (size_t i = 0; i < rows; ++i) {
    lf[i] = c_cum[lcol[i]] + seen[lcol[i]]++;
  }
  // Walk backwards from row 0 (the sentinel-suffix row): its L char is the
  // last byte of the original string.
  std::string out(n, '\0');
  uint32_t row = 0;
  for (size_t k = 0; k < n; ++k) {
    const uint16_t c = lcol[row];
    if (c == 0) {
      return Status::Corruption("bwt: sentinel encountered mid-walk");
    }
    out[n - 1 - k] = static_cast<char>(c - 1);
    row = lf[row];
  }
  return out;
}

std::string MtfForward(std::string_view input) {
  unsigned char order[256];
  for (int i = 0; i < 256; ++i) {
    order[i] = static_cast<unsigned char>(i);
  }
  std::string out;
  out.reserve(input.size());
  for (char ch : input) {
    const auto byte = static_cast<unsigned char>(ch);
    int rank = 0;
    while (order[rank] != byte) {
      ++rank;
    }
    out.push_back(static_cast<char>(rank));
    // Move to front.
    for (int i = rank; i > 0; --i) {
      order[i] = order[i - 1];
    }
    order[0] = byte;
  }
  return out;
}

std::string MtfInverse(std::string_view ranks) {
  unsigned char order[256];
  for (int i = 0; i < 256; ++i) {
    order[i] = static_cast<unsigned char>(i);
  }
  std::string out;
  out.reserve(ranks.size());
  for (char ch : ranks) {
    const auto rank = static_cast<unsigned char>(ch);
    const unsigned char byte = order[rank];
    out.push_back(static_cast<char>(byte));
    for (int i = rank; i > 0; --i) {
      order[i] = order[i - 1];
    }
    order[0] = byte;
  }
  return out;
}

std::vector<uint16_t> ZrleForward(std::string_view mtf_ranks) {
  // Alphabet: 0 (RUNA) and 1 (RUNB) encode runs of rank-0; rank r >= 1 is
  // emitted as symbol r + 1. Run length L >= 1 is written in bijective
  // base-2 digits (RUNA = digit 1, RUNB = digit 2), least significant first.
  std::vector<uint16_t> out;
  out.reserve(mtf_ranks.size());
  size_t run = 0;
  auto flush_run = [&] {
    size_t r = run;
    while (r > 0) {
      --r;
      out.push_back(static_cast<uint16_t>(r & 1));  // RUNA=0 digit1, RUNB=1 digit2
      r >>= 1;
    }
    run = 0;
  };
  for (char ch : mtf_ranks) {
    const auto rank = static_cast<unsigned char>(ch);
    if (rank == 0) {
      ++run;
    } else {
      flush_run();
      out.push_back(static_cast<uint16_t>(rank + 1));
    }
  }
  flush_run();
  return out;
}

Result<std::string> ZrleInverse(const std::vector<uint16_t>& symbols) {
  std::string out;
  out.reserve(symbols.size());
  size_t i = 0;
  while (i < symbols.size()) {
    if (symbols[i] <= 1) {
      // Bijective base-2 run of zeros, least significant digit first.
      size_t run = 0;
      size_t place = 1;
      while (i < symbols.size() && symbols[i] <= 1) {
        run += place * (static_cast<size_t>(symbols[i]) + 1);
        place <<= 1;
        ++i;
      }
      if (run > (1u << 30)) {
        return Status::Corruption("zrle: absurd run length");
      }
      out.append(run, '\0');
    } else {
      const unsigned rank = symbols[i] - 1;
      if (rank > 255) {
        return Status::Corruption("zrle: symbol out of range");
      }
      out.push_back(static_cast<char>(rank));
      ++i;
    }
  }
  return out;
}

}  // namespace minicrypt
