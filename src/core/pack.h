// The pack: a sorted run of key-value pairs that is compressed and encrypted
// as one unit (paper §2.5). The pack is entirely a client-side concept — the
// server only ever sees its sealed envelope.
//
// Storage layout: entries are string_view slices over an internal arena
// rather than per-entry heap strings. The hot decode path
// (FromSerialized) adopts the decompressed buffer wholesale and points the
// views straight into it — opening a pack allocates the entry index and
// nothing else. Arena blocks have stable addresses, so views never dangle
// across mutations; copying a Pack deep-copies into a fresh arena.

#ifndef MINICRYPT_SRC_CORE_PACK_H_
#define MINICRYPT_SRC_CORE_PACK_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace minicrypt {

class Pack {
 public:
  // Owned input type for builders (FromSorted callers construct these from
  // loop-local strings; the pack copies them into its arena).
  struct Entry {
    std::string key;    // order-preserving encoded key bytes
    std::string value;
  };

  // Stored entry: slices into the pack's arena. Valid for the lifetime of
  // the owning Pack; a Pack copy re-anchors them into its own arena.
  struct EntryView {
    std::string_view key;
    std::string_view value;
  };

  Pack() = default;

  Pack(const Pack& other);
  Pack& operator=(const Pack& other);
  Pack(Pack&&) noexcept = default;
  Pack& operator=(Pack&&) noexcept = default;

  // Builds a pack from entries that must already be sorted by key, unique.
  static Result<Pack> FromSorted(std::vector<Entry> entries);

  // --- Serialization ----------------------------------------------------------

  // [n varint] then n x (key len-prefixed, value len-prefixed), sorted.
  std::string Serialize() const;

  // Copying decode: borrows `bytes`, copies each field into the arena.
  static Result<Pack> Deserialize(std::string_view bytes);

  // Zero-copy decode: adopts the buffer (the decompressor's output moves in
  // here) and slices entries out of it without copying a byte.
  static Result<Pack> FromSerialized(std::string&& bytes);

  // --- Queries ----------------------------------------------------------------

  // Value for an exact key.
  std::optional<std::string_view> Find(std::string_view key) const;

  // Smallest key (the packID, paper §2.5). Empty pack -> nullopt.
  std::optional<std::string_view> MinKey() const;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<EntryView>& entries() const { return entries_; }

  // Bytes held by the arena (adopted buffers + copied fields), for cache
  // accounting. Overwritten values keep their arena bytes until the pack is
  // destroyed, so this tracks retained memory, not live payload.
  size_t ArenaBytes() const { return arena_.TotalBytes(); }

  // --- Mutations --------------------------------------------------------------

  // Inserts or overwrites; keeps order. Returns true when the key was new.
  bool Upsert(std::string_view key, std::string_view value);

  // Removes a key; returns true when it was present. The packID does not
  // change even when the smallest key is removed (paper §5.3).
  bool Erase(std::string_view key);

  // Splits deterministically: the first ceil(n/2) keys stay in the returned
  // left pack, the rest form the right pack (paper §5.2 requires that every
  // client splitting the same pack produces identical halves). This pack is
  // left unchanged. n must be >= 2.
  Result<std::pair<Pack, Pack>> SplitDeterministic() const;

 private:
  // Bump allocator with stable addresses. Blocks are never reallocated, so
  // handed-out views stay valid for the Pack's lifetime; whole buffers can
  // be adopted without copying.
  class Arena {
   public:
    Arena() = default;
    Arena(Arena&&) noexcept = default;
    Arena& operator=(Arena&&) noexcept = default;
    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    std::string_view Copy(std::string_view s);
    // Takes ownership of the buffer; the returned view covers all of it.
    std::string_view Adopt(std::string&& s);
    // Pre-sizes the next block so bulk builders pay for exactly the bytes
    // they hold (the cache charges ArenaBytes; small packs stay small).
    void Reserve(size_t n);
    size_t TotalBytes() const { return total_; }

   private:
    std::vector<std::unique_ptr<char[]>> blocks_;
    std::vector<std::unique_ptr<std::string>> adopted_;
    char* cur_ = nullptr;
    size_t remaining_ = 0;
    size_t total_ = 0;
  };

  // Index of the first entry with entry.key >= key.
  size_t LowerBound(std::string_view key) const;

  Arena arena_;
  std::vector<EntryView> entries_;  // sorted by key, unique
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_CORE_PACK_H_
