// The pack: a sorted run of key-value pairs that is compressed and encrypted
// as one unit (paper §2.5). The pack is entirely a client-side concept — the
// server only ever sees its sealed envelope.

#ifndef MINICRYPT_SRC_CORE_PACK_H_
#define MINICRYPT_SRC_CORE_PACK_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace minicrypt {

class Pack {
 public:
  struct Entry {
    std::string key;    // order-preserving encoded key bytes
    std::string value;
  };

  Pack() = default;

  // Builds a pack from entries that must already be sorted by key, unique.
  static Result<Pack> FromSorted(std::vector<Entry> entries);

  // --- Serialization ----------------------------------------------------------

  // [n varint] then n x (key len-prefixed, value len-prefixed), sorted.
  std::string Serialize() const;
  static Result<Pack> Deserialize(std::string_view bytes);

  // --- Queries ----------------------------------------------------------------

  // Value for an exact key.
  std::optional<std::string_view> Find(std::string_view key) const;

  // Smallest key (the packID, paper §2.5). Empty pack -> nullopt.
  std::optional<std::string_view> MinKey() const;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<Entry>& entries() const { return entries_; }

  // --- Mutations --------------------------------------------------------------

  // Inserts or overwrites; keeps order. Returns true when the key was new.
  bool Upsert(std::string_view key, std::string_view value);

  // Removes a key; returns true when it was present. The packID does not
  // change even when the smallest key is removed (paper §5.3).
  bool Erase(std::string_view key);

  // Splits deterministically: the first ceil(n/2) keys stay in the returned
  // left pack, the rest form the right pack (paper §5.2 requires that every
  // client splitting the same pack produces identical halves). This pack is
  // left unchanged. n must be >= 2.
  Result<std::pair<Pack, Pack>> SplitDeterministic() const;

 private:
  // Index of the first entry with entry.key >= key.
  size_t LowerBound(std::string_view key) const;

  std::vector<Entry> entries_;  // sorted by key, unique
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_CORE_PACK_H_
