#include "src/core/generic_client.h"

#include <algorithm>
#include <map>
#include <vector>

#include "src/common/coding.h"
#include "src/kvstore/fault_injector.h"
#include "src/obs/metrics.h"

namespace minicrypt {

namespace {

constexpr std::string_view kValueColumn = "v";
constexpr std::string_view kHashColumn = "h";

Row PackRow(const SealedPack& sealed) {
  Row row;
  row.cells[std::string(kValueColumn)] = Cell{sealed.envelope, 0, false};
  row.cells[std::string(kHashColumn)] = Cell{sealed.hash, 0, false};
  return row;
}

Result<std::pair<std::string_view, std::string_view>> ExtractPackCells(const Row& row) {
  auto v = row.cells.find(kValueColumn);
  auto h = row.cells.find(kHashColumn);
  if (v == row.cells.end() || h == row.cells.end()) {
    return Status::Corruption("pack row missing value/hash cells");
  }
  return std::make_pair(std::string_view(v->second.value), std::string_view(h->second.value));
}

// Human-readable pack id for error messages: the decoded key when the id is
// a plain encoded key, hex otherwise (OPE image / PRF output).
std::string FormatPackId(std::string_view id) {
  if (id.empty()) {
    return "<none>";
  }
  if (auto key = DecodeKey64(id); key.ok()) {
    return std::to_string(*key);
  }
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out = "0x";
  for (const char c : id) {
    const auto b = static_cast<unsigned char>(c);
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

constexpr uint64_t kDefaultJitterSeed = 0x6D696E6963727970ULL;  // "minicryp"

// Rotation metadata lives beside the data it describes, in a reserved
// partition: PartitionLabel() only ever produces "p<N>", so "rotation" is
// invisible to range queries, pack-integrity sweeps, and the repack walk.
constexpr std::string_view kRotationPartition = "rotation";
constexpr std::string_view kRotationStateKey = "state";
constexpr std::string_view kRotationStateColumn = "s";

std::string EncodeRotationState(const KeyRotationState& rs) {
  return "v1|" + std::to_string(rs.target) + "|" + std::to_string(rs.stage) + "|" +
         std::to_string(rs.cursor) + "|" + std::to_string(rs.retired_below);
}

Result<KeyRotationState> ParseRotationState(std::string_view s) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t bar = s.find('|', start);
    fields.push_back(s.substr(start, bar == std::string_view::npos ? bar : bar - start));
    if (bar == std::string_view::npos) {
      break;
    }
    start = bar + 1;
  }
  if (fields.size() != 5 || fields[0] != "v1") {
    return Status::Corruption("unparseable rotation state record");
  }
  auto parse_u64 = [](std::string_view f, uint64_t* out) {
    *out = 0;
    if (f.empty()) {
      return false;
    }
    for (const char c : f) {
      if (c < '0' || c > '9') {
        return false;
      }
      *out = *out * 10 + static_cast<uint64_t>(c - '0');
    }
    return true;
  };
  KeyRotationState rs;
  uint64_t stage = 0;
  uint64_t cursor = 0;
  if (!parse_u64(fields[1], &rs.target) || !parse_u64(fields[2], &stage) ||
      !parse_u64(fields[3], &cursor) || !parse_u64(fields[4], &rs.retired_below) ||
      stage > KeyRotationState::kStageVerify) {
    return Status::Corruption("unparseable rotation state record");
  }
  rs.stage = static_cast<int>(stage);
  rs.cursor = static_cast<int>(cursor);
  return rs;
}

}  // namespace

GenericClient::GenericClient(Cluster* cluster, const MiniCryptOptions& options,
                             const SymmetricKey& key)
    : GenericClient(cluster, options, Keyring::FromMaster(key)) {}

GenericClient::GenericClient(Cluster* cluster, const MiniCryptOptions& options,
                             const SymmetricKey& key, std::shared_ptr<PackCache> cache)
    : GenericClient(cluster, options, Keyring::FromMaster(key), std::move(cache)) {}

GenericClient::GenericClient(Cluster* cluster, const MiniCryptOptions& options,
                             std::shared_ptr<Keyring> keyring)
    : GenericClient(cluster, options, std::move(keyring),
                    PackCache::FromOptions(options.cache_capacity_bytes, options.cache_ttl_micros,
                                           cluster->options().clock)) {}

GenericClient::GenericClient(Cluster* cluster, const MiniCryptOptions& options,
                             std::shared_ptr<Keyring> keyring, std::shared_ptr<PackCache> cache)
    : cluster_(cluster),
      options_(options),
      keyring_(std::move(keyring)),
      key_(keyring_->master()),
      crypter_(options, keyring_),
      cache_(std::move(cache)),
      clock_(cluster->options().clock),
      backoff_(options.retry_backoff_base_micros, options.retry_backoff_max_micros,
               options.retry_jitter_seed != 0 ? options.retry_jitter_seed : kDefaultJitterSeed) {
  if (options_.encrypt_pack_ids) {
    packid_cipher_.emplace(options_, key_);
  }
  if (options_.ope_pack_ids) {
    ope_.emplace(key_.Derive("packid-ope:" + options_.table));
  }
}

void GenericClient::BackoffBeforeRetry(int attempt) {
  uint64_t delay = 0;
  {
    std::lock_guard<std::mutex> lock(backoff_mu_);
    delay = backoff_.NextDelayMicros(attempt);
  }
  if (delay > 0) {
    OBS_COUNTER_ADD("client.backoff_micros", delay);
    clock_->SleepMicros(delay);
  }
}

std::string GenericClient::StoredKeyFor(std::string_view encoded_key) const {
  if (!ope_.has_value()) {
    return std::string(encoded_key);
  }
  auto key = DecodeKey64(encoded_key);
  if (!key.ok()) {
    return std::string(encoded_key);
  }
  return ope_->Encrypt(*key);
}

Status GenericClient::CreateTable() {
  // (Re)creating the table starts a fresh measurement window: counters always
  // describe work against the current incarnation of the table.
  stats_.Reset();
  // Client-encrypted tables gain nothing from server-side compression.
  return cluster_->CreateTable(options_.table, /*server_compression=*/false);
}

std::string GenericClient::StoredPackId(std::string_view partition, const Pack& pack,
                                        std::string_view fallback_id) const {
  if (packid_cipher_.has_value()) {
    // Static-bucket mode: the stored ID is the PRF of the bucket that the
    // pack's keys belong to.
    auto min_key = pack.MinKey();
    const std::string_view id_source = min_key.has_value() ? *min_key : fallback_id;
    auto key = DecodeKey64(id_source);
    if (key.ok()) {
      return packid_cipher_->EncryptBucket(packid_cipher_->BucketFor(*key));
    }
  }
  auto min_key = pack.MinKey();
  return StoredKeyFor(min_key.has_value() ? *min_key : fallback_id);
}

Result<GenericClient::FetchedPack> GenericClient::FetchPackFor(std::string_view partition,
                                                               std::string_view encoded_key) {
  // Covers the server round trip (floor query or direct read) plus
  // Open (pack.decrypt + pack.decompress, timed separately).
  OBS_SPAN("pack.fetch");
  std::string stored_id;
  Row row;
  if (packid_cipher_.has_value()) {
    // Direct lookup of the static bucket's PRF image (no order available).
    auto key = DecodeKey64(encoded_key);
    if (!key.ok()) {
      return key.status();
    }
    stored_id = packid_cipher_->EncryptBucket(packid_cipher_->BucketFor(*key));
    MC_ASSIGN_OR_RETURN(row, cluster_->Read(options_.table, partition, stored_id));
  } else {
    // Paper Figure 3: SELECT ... WHERE packID <= key ORDER BY packID DESC
    // LIMIT 1, served by the substrate's floor query. In OPE mode the floor
    // runs on the (order-preserving) images, which is the whole point.
    MC_ASSIGN_OR_RETURN(auto found, cluster_->ReadFloor(options_.table, partition,
                                                        StoredKeyFor(encoded_key)));
    stored_id = found.first;
    row = std::move(found.second);
  }
  MC_ASSIGN_OR_RETURN(auto cells, ExtractPackCells(row));
  MC_ASSIGN_OR_RETURN(Pack pack, crypter_.Open(cells.first, stored_id));
  FetchedPack out;
  out.pack_id = std::move(stored_id);
  out.pack = std::make_shared<const Pack>(std::move(pack));
  out.hash = std::string(cells.second);
  return out;
}

Result<GenericClient::FetchedPack> GenericClient::FetchPackCached(std::string_view partition,
                                                                  std::string_view encoded_key,
                                                                  bool allow_ttl) {
  // PRF-bucket mode has no floor order for the probe to route on; the cache
  // only serves the floor-addressed modes.
  if (cache_ == nullptr || packid_cipher_.has_value()) {
    return FetchPackFor(partition, encoded_key);
  }
  const std::string stored = StoredKeyFor(encoded_key);
  if (allow_ttl) {
    auto fresh = cache_->Floor(options_.table, partition, stored, /*only_fresh=*/true);
    if (fresh.has_value()) {
      cache_->RecordTtlServe();
      FetchedPack out;
      out.pack_id = std::move(fresh->first);
      out.pack = fresh->second.pack;
      out.hash = std::move(fresh->second.hash);
      out.ttl_fresh = true;
      return out;
    }
  }
  auto candidate = cache_->Floor(options_.table, partition, stored, /*only_fresh=*/false);
  if (!candidate.has_value()) {
    // Nothing cached near this key: a full floor fetch both answers the read
    // and seeds the cache (no probe round trip wasted on a sure miss).
    MC_ASSIGN_OR_RETURN(FetchedPack fetched, FetchPackFor(partition, encoded_key));
    cache_->Put(options_.table, partition, fetched.pack_id, fetched.pack, fetched.hash);
    return fetched;
  }
  // Version probe: ask the server floor for the hash cell only — ~40 bytes
  // on the wire instead of the envelope.
  auto probe = cluster_->ReadFloorCell(options_.table, partition, stored, kHashColumn);
  if (!probe.ok()) {
    if (probe.status().IsNotFound()) {
      // The server has no floor although we cached one — stale beyond repair
      // (e.g. the table was dropped and re-created). Drop the candidate.
      cache_->Invalidate(options_.table, partition, candidate->first);
    }
    return probe.status();
  }
  if (auto pack = cache_->ValidateAndGet(options_.table, partition, probe->first, probe->second)) {
    FetchedPack out;
    out.pack_id = std::move(probe->first);
    out.pack = std::move(pack);
    out.hash = std::move(probe->second);
    return out;
  }
  // Cache miss (or version skew): the probe already routed us to the owning
  // packID, so read that row directly instead of paying a second floor.
  OBS_SPAN("pack.fetch");
  auto row = cluster_->Read(options_.table, partition, probe->first);
  if (!row.ok()) {
    if (!row.status().IsNotFound()) {
      return row.status();
    }
    // A CL=ONE replica that missed the newest insert can advertise a floor it
    // cannot serve; fall back to the full floor path.
    MC_ASSIGN_OR_RETURN(FetchedPack fetched, FetchPackFor(partition, encoded_key));
    cache_->Put(options_.table, partition, fetched.pack_id, fetched.pack, fetched.hash);
    return fetched;
  }
  MC_ASSIGN_OR_RETURN(auto cells, ExtractPackCells(*row));
  MC_ASSIGN_OR_RETURN(Pack pack, crypter_.Open(cells.first, probe->first));
  FetchedPack out;
  out.pack_id = std::move(probe->first);
  out.pack = std::make_shared<const Pack>(std::move(pack));
  out.hash = std::string(cells.second);  // may be newer than the probe; that's fine
  cache_->Put(options_.table, partition, out.pack_id, out.pack, out.hash);
  return out;
}

Result<GenericClient::FetchedPack> GenericClient::FetchWithRetries(std::string_view partition,
                                                                   std::string_view encoded_key,
                                                                   bool allow_ttl) {
  Result<FetchedPack> fetched = Status::Unavailable("fetch never attempted");
  for (int attempt = 0; attempt < options_.max_put_retries; ++attempt) {
    if (attempt > 0) {
      OBS_COUNTER_INC("client.get.unavailable_retries");
      BackoffBeforeRetry(attempt - 1);
    }
    fetched = FetchPackCached(partition, encoded_key, allow_ttl);
    if (fetched.ok() || !fetched.status().IsUnavailable()) {
      break;  // only transient unavailability is worth retrying
    }
  }
  return fetched;
}

Result<std::shared_ptr<const Pack>> GenericClient::OpenPackCached(std::string_view partition,
                                                                  std::string_view pack_id,
                                                                  std::string_view envelope,
                                                                  std::string_view hash) {
  const bool use_cache = cache_ != nullptr && !packid_cipher_.has_value();
  if (use_cache) {
    if (auto pack = cache_->ValidateAndGet(options_.table, partition, pack_id, hash)) {
      return pack;  // identical bytes by hash: skip the decrypt + decompress
    }
  }
  MC_ASSIGN_OR_RETURN(Pack pack, crypter_.Open(envelope, pack_id));
  auto shared = std::make_shared<const Pack>(std::move(pack));
  if (use_cache) {
    cache_->Put(options_.table, partition, pack_id, shared, std::string(hash));
  }
  return shared;
}

void GenericClient::CacheAfterWrite(std::string_view partition, std::string_view pack_id,
                                    const Pack& pack, const std::string& hash) {
  if (cache_ == nullptr || packid_cipher_.has_value()) {
    return;
  }
  cache_->Put(options_.table, partition, pack_id, std::make_shared<const Pack>(pack), hash);
}

void GenericClient::CacheInvalidate(std::string_view partition, std::string_view pack_id) {
  if (cache_ == nullptr || packid_cipher_.has_value()) {
    return;
  }
  cache_->Invalidate(options_.table, partition, pack_id);
}

Result<std::string> GenericClient::Get(uint64_t key) {
  OBS_SPAN("client.get");
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  const std::string encoded = EncodeKey64(key);
  const std::string partition = PartitionForKey(encoded, options_.hash_partitions);
  auto fetched = FetchWithRetries(partition, encoded, /*allow_ttl=*/true);
  if (fetched.ok() && fetched->ttl_fresh && !fetched->pack->Find(encoded).has_value()) {
    // A TTL-fresh pack may predate a split that moved this key to a newer
    // pack: confirm the miss against the server before reporting NotFound.
    fetched = FetchWithRetries(partition, encoded, /*allow_ttl=*/false);
  }
  if (!fetched.ok()) {
    if (fetched.status().IsUnavailable()) {
      return Status::Unavailable("get ran out of retries: " + fetched.status().message() +
                                 " (key=" + std::to_string(key) + ")");
    }
    return fetched.status();
  }
  auto value = fetched->pack->Find(encoded);
  if (!value.has_value()) {
    return Status::NotFound("key not present in its pack");
  }
  return std::string(*value);
}

std::vector<Result<std::string>> GenericClient::MultiGet(const std::vector<uint64_t>& keys) {
  OBS_SPAN("client.multiget");
  stats_.multigets.fetch_add(1, std::memory_order_relaxed);
  OBS_COUNTER_INC("client.multiget.batches");
  OBS_COUNTER_ADD("client.multiget.keys", keys.size());
  std::vector<Result<std::string>> out(keys.size(), Status::Internal("multiget slot unresolved"));
  if (keys.empty()) {
    return out;
  }

  // Unique keys -> the input slots they fill, so duplicates share one lookup.
  std::map<uint64_t, std::vector<size_t>> slots;
  for (size_t i = 0; i < keys.size(); ++i) {
    slots[keys[i]].push_back(i);
  }
  auto resolve = [&](uint64_t key, const Result<std::string>& r) {
    for (size_t slot : slots[key]) {
      out[slot] = r;
    }
  };

  if (packid_cipher_.has_value()) {
    // Static-bucket mode: every key of one bucket lives in the same pack row,
    // so the batch groups by (partition, bucket) and reads each row once.
    std::map<std::pair<std::string, uint64_t>, std::vector<uint64_t>> groups;
    for (const auto& [key, unused] : slots) {
      const std::string encoded = EncodeKey64(key);
      groups[{PartitionForKey(encoded, options_.hash_partitions), packid_cipher_->BucketFor(key)}]
          .push_back(key);
    }
    for (const auto& [group, gkeys] : groups) {
      OBS_COUNTER_INC("client.multiget.packs_fetched");
      auto fetched = FetchWithRetries(group.first, EncodeKey64(gkeys.front()), /*allow_ttl=*/false);
      for (const uint64_t k : gkeys) {
        if (!fetched.ok()) {
          resolve(k, fetched.status());
          continue;
        }
        auto v = fetched->pack->Find(EncodeKey64(k));
        resolve(k, v.has_value() ? Result<std::string>(std::string(*v))
                                 : Status::NotFound("key not present in its pack"));
      }
    }
    return out;
  }

  // Floor-addressed modes: group unique keys by partition, then resolve each
  // partition's keys from largest to smallest with iterated floor fetches.
  // The pack owning the largest unresolved key is authoritative for every
  // unresolved key down to its packID — floor(k_max) = P means no pack lies
  // in (P.id, k_max] — so one fetch + decrypt serves the whole group.
  std::map<std::string, std::vector<uint64_t>> by_partition;  // values ascending
  for (const auto& [key, unused] : slots) {
    by_partition[PartitionForKey(EncodeKey64(key), options_.hash_partitions)].push_back(key);
  }
  for (const auto& [partition, pkeys] : by_partition) {
    size_t remaining = pkeys.size();
    while (remaining > 0) {
      const uint64_t top = pkeys[remaining - 1];
      const std::string encoded_top = EncodeKey64(top);
      auto fetched = FetchWithRetries(partition, encoded_top, /*allow_ttl=*/true);
      if (fetched.ok() && fetched->ttl_fresh && !fetched->pack->Find(encoded_top).has_value()) {
        fetched = FetchWithRetries(partition, encoded_top, /*allow_ttl=*/false);
      }
      if (!fetched.ok()) {
        if (fetched.status().IsNotFound()) {
          // No pack at or below `top` in this partition: every smaller key
          // necessarily misses too (matches what sequential Gets would say).
          while (remaining > 0) {
            resolve(pkeys[--remaining], Status::NotFound("no pack at or below key"));
          }
        } else {
          // Hard or exhausted-transient failure; it would hit every remaining
          // key of this partition the same way.
          while (remaining > 0) {
            resolve(pkeys[--remaining], fetched.status());
          }
        }
        break;
      }
      OBS_COUNTER_INC("client.multiget.packs_fetched");
      // Serve every unresolved key this pack is authoritative for.
      while (remaining > 0 &&
             StoredKeyFor(EncodeKey64(pkeys[remaining - 1])) >= fetched->pack_id) {
        const uint64_t k = pkeys[remaining - 1];
        const std::string encoded = EncodeKey64(k);
        auto v = fetched->pack->Find(encoded);
        if (!v.has_value() && fetched->ttl_fresh) {
          // Same guard as Get: confirm a TTL-fresh miss for this key against
          // the server (the key may have moved to a newer pack).
          auto confirm = FetchWithRetries(partition, encoded, /*allow_ttl=*/false);
          if (confirm.ok()) {
            auto cv = confirm->pack->Find(encoded);
            resolve(k, cv.has_value() ? Result<std::string>(std::string(*cv))
                                      : Status::NotFound("key not present in its pack"));
          } else if (confirm.status().IsNotFound()) {
            resolve(k, Status::NotFound("no pack at or below key"));
          } else {
            resolve(k, confirm.status());
          }
          --remaining;
          continue;
        }
        resolve(k, v.has_value() ? Result<std::string>(std::string(*v))
                                 : Status::NotFound("key not present in its pack"));
        --remaining;
      }
    }
  }
  return out;
}

Result<std::vector<std::pair<uint64_t, std::string>>> GenericClient::GetRange(uint64_t low,
                                                                              uint64_t high) {
  OBS_SPAN("client.range");
  stats_.range_queries.fetch_add(1, std::memory_order_relaxed);
  if (packid_cipher_.has_value()) {
    return Status::InvalidArgument("range queries unsupported with encrypted packIDs");
  }
  if (low > high) {
    return Status::InvalidArgument("low > high");
  }
  const std::string klo = EncodeKey64(low);
  const std::string khi = EncodeKey64(high);
  // Server-side bounds live in stored-packID space (identity, or OPE images).
  const std::string slo = StoredKeyFor(klo);
  const std::string shi = StoredKeyFor(khi);

  std::vector<std::pair<uint64_t, std::string>> out;
  // Paper §7: a range query is issued against every hash partition, because
  // contiguous keys are spread across them.
  for (int p = 0; p < options_.hash_partitions; ++p) {
    const std::string partition = PartitionLabel(p);
    Result<std::vector<std::pair<std::string, Row>>> rows =
        Status::Unavailable("range never attempted");
    for (int attempt = 0; attempt < options_.max_put_retries; ++attempt) {
      if (attempt > 0) {
        OBS_COUNTER_INC("client.get.unavailable_retries");
        BackoffBeforeRetry(attempt - 1);
      }
      rows = cluster_->ReadRange(options_.table, partition, slo, shi);
      if (rows.ok() || !rows.status().IsUnavailable()) {
        break;
      }
    }
    if (!rows.ok()) {
      return rows.status();
    }

    // (stored packID, pack); packs are shared with the cache when it's on.
    std::vector<std::pair<std::string, std::shared_ptr<const Pack>>> packs;
    packs.reserve(rows->size() + 1);
    bool need_floor = true;  // paper Figure 4, line 5
    for (auto& [id, row] : *rows) {
      if (id == slo) {
        need_floor = false;
      }
      auto cells = ExtractPackCells(row);
      if (!cells.ok()) {
        return cells.status();
      }
      MC_ASSIGN_OR_RETURN(auto pack, OpenPackCached(partition, id, cells->first, cells->second));
      packs.emplace_back(id, std::move(pack));
    }
    if (need_floor) {
      auto fetched = FetchPackCached(partition, klo, /*allow_ttl=*/false);
      if (fetched.ok()) {
        // Skip if it duplicates a pack already in the result set.
        const bool duplicate =
            !rows->empty() && fetched->pack_id >= slo && fetched->pack_id <= shi;
        if (!duplicate) {
          packs.emplace_back(fetched->pack_id, std::move(fetched->pack));
        }
      } else if (!fetched.status().IsNotFound()) {
        return fetched.status();
      }
    }
    // A key is only emitted from its *authoritative* pack — the one a floor
    // query would route it to (largest packID <= key). After an incomplete
    // split (Figure 6, interrupted between steps 3 and 5) the left pack still
    // holds stale copies of the right half; point reads never see them, and
    // range reads must apply the same routing or they would surface stale
    // values and resurrect deleted keys.
    std::vector<std::string> ids;
    ids.reserve(packs.size());
    for (const auto& [id, pack] : packs) {
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    for (const auto& [id, pack] : packs) {
      for (const auto& entry : pack->entries()) {
        if (entry.key >= klo && entry.key <= khi) {
          auto it = std::upper_bound(ids.begin(), ids.end(), StoredKeyFor(entry.key));
          if (it == ids.begin() || *(it - 1) != id) {
            continue;  // shadowed copy; the authoritative pack carries this key
          }
          auto key = DecodeKey64(entry.key);
          if (!key.ok()) {
            return key.status();
          }
          out.emplace_back(*key, entry.value);
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

Status GenericClient::InsertNewPack(std::string_view partition, std::string_view pack_id,
                                    const Pack& pack) {
  MC_ASSIGN_OR_RETURN(SealedPack sealed, crypter_.Seal(pack, pack_id));
  const Status s = cluster_->WriteIf(options_.table, partition, pack_id, PackRow(sealed),
                                     LwtCondition::NotExists());
  if (s.ok()) {
    // Only an acked insert may be cached: sealing is randomized, so a lost
    // race means the stored envelope hash is a peer's, not ours.
    CacheAfterWrite(partition, pack_id, pack, sealed.hash);
  } else if (s.IsUnavailable()) {
    CacheInvalidate(partition, pack_id);  // ambiguous: unknown stored version
  }
  return s;
}

Status GenericClient::SplitPack(std::string_view partition, const FetchedPack& fetched) {
  OBS_SPAN("pack.split");
  OBS_COUNTER_INC("client.splits");
  stats_.splits.fetch_add(1, std::memory_order_relaxed);
  MC_ASSIGN_OR_RETURN(auto halves, fetched.pack->SplitDeterministic());
  const Pack& left = halves.first;
  const Pack& right = halves.second;

  // Bound on resolving one split step's ambiguous outcomes before handing
  // the whole operation back to the outer retry loop.
  constexpr int kSplitStepAttempts = 8;

  // Figure 6 step 3: INSERT right IF NOT EXISTS. Losing the race is fine —
  // the winner inserted bytes identical to ours (deterministic split). An
  // ambiguous (Unavailable) outcome must be resolved before step 5, though:
  // truncating the left pack while the right one does not exist would lose
  // the tail keys.
  auto right_id = right.MinKey();
  if (!right_id.has_value()) {
    return Status::Internal("split produced empty right pack");
  }
  const std::string right_stored = StoredKeyFor(*right_id);
  Status s = Status::Ok();
  bool right_in_place = false;
  for (int attempt = 0; attempt < kSplitStepAttempts; ++attempt) {
    if (attempt > 0) {
      BackoffBeforeRetry(attempt - 1);
    }
    s = InsertNewPack(partition, right_stored, right);
    if (s.ok() || s.IsConditionFailed() || s.IsAlreadyExists()) {
      right_in_place = true;
      break;
    }
    if (!s.IsUnavailable()) {
      return s;
    }
    OBS_COUNTER_INC("client.lwt.ambiguous");
    auto probe = cluster_->Read(options_.table, partition, right_stored);
    if (probe.ok()) {
      right_in_place = true;  // our ambiguous insert (or a peer's) landed
      break;
    }
    if (!probe.status().IsNotFound() && !probe.status().IsUnavailable()) {
      return probe.status();
    }
  }
  if (!right_in_place) {
    return s;
  }

  if (split_fail_point_ == SplitFailPoint::kAfterRightInsert) {
    // Simulated client crash between steps 3 and 5 of Figure 6: the right
    // half now exists twice (new pack + stale copy in the original). The
    // paper argues this is safe; tests exercise it.
    return Status::Aborted("injected split failure");
  }

  // Figure 6 step 5: UPDATE left IF hash = h, driven to completion across
  // ambiguous outcomes — an abandoned truncation leaves the right half
  // duplicated in this pack, where range queries could surface the stale
  // copies.
  MC_ASSIGN_OR_RETURN(SealedPack sealed_left, crypter_.Seal(left, fetched.pack_id));
  for (int attempt = 0; attempt < kSplitStepAttempts; ++attempt) {
    if (attempt > 0) {
      BackoffBeforeRetry(attempt - 1);
    }
    s = cluster_->WriteIf(options_.table, partition, fetched.pack_id, PackRow(sealed_left),
                          LwtCondition::CellEquals(std::string(kHashColumn), fetched.hash));
    // ConditionFailed: the pack changed under us. An oversized pack is only
    // ever changed by truncation (every writer splits before mutating one),
    // so another splitter — or our own ambiguously-applied attempt — already
    // finished the job.
    if (s.ok()) {
      CacheAfterWrite(partition, fetched.pack_id, left, sealed_left.hash);
      return Status::Ok();
    }
    if (s.IsConditionFailed()) {
      // A peer truncated it with their own (randomized) seal: our cached
      // pre-split image is stale.
      CacheInvalidate(partition, fetched.pack_id);
      return Status::Ok();
    }
    if (!s.IsUnavailable()) {
      return s;
    }
    OBS_COUNTER_INC("client.lwt.ambiguous");
    CacheInvalidate(partition, fetched.pack_id);
    auto row = cluster_->Read(options_.table, partition, fetched.pack_id);
    if (!row.ok()) {
      if (row.status().IsUnavailable()) {
        continue;
      }
      return row.status();
    }
    auto cells = ExtractPackCells(*row);
    if (!cells.ok()) {
      return cells.status();
    }
    if (cells->second != fetched.hash) {
      return Status::Ok();  // hash moved: the truncation (ours or a peer's) applied
    }
  }
  return s;
}

Status GenericClient::TryMutate(uint64_t key, const std::function<void(Pack*)>& mutate,
                                const std::function<bool(const Pack&)>& applied,
                                bool insert_if_new, bool* retry, std::string* pack_id) {
  *retry = false;
  const std::string encoded = EncodeKey64(key);
  const std::string partition = PartitionForKey(encoded, options_.hash_partitions);

  auto fetched = FetchPackCached(partition, encoded, /*allow_ttl=*/false);
  if (!fetched.ok()) {
    if (!fetched.status().IsNotFound()) {
      return fetched.status();
    }
    if (!insert_if_new) {
      return Status::Ok();  // deleting a key that has no pack: nothing to do
    }
    // No pack at or below the key in this partition: create a fresh pack
    // whose ID is the key itself.
    Pack fresh;
    mutate(&fresh);
    if (fresh.empty()) {
      return Status::Ok();
    }
    const std::string stored_id = StoredPackId(partition, fresh, encoded);
    if (pack_id != nullptr) {
      *pack_id = stored_id;
    }
    Status s = InsertNewPack(partition, stored_id, fresh);
    if (s.IsConditionFailed() || s.IsAlreadyExists()) {
      *retry = true;  // another client created it first; re-read and merge in
      return Status::Ok();
    }
    if (s.IsUnavailable()) {
      // Ambiguous outcome of INSERT IF NOT EXISTS: the pack may or may not
      // exist now. Re-reading (the retry) resolves it either way — if our
      // insert landed, the next attempt finds the pack and verifies.
      OBS_COUNTER_INC("client.lwt.ambiguous");
      *retry = true;
      return Status::Ok();
    }
    return s;
  }
  if (pack_id != nullptr) {
    *pack_id = fetched->pack_id;
  }

  // Paper Figure 5 line 4: split first when the pack is oversized, then
  // retry the original operation.
  if (!packid_cipher_.has_value() && fetched->pack->size() > options_.EffectiveMaxKeys()) {
    MC_RETURN_IF_ERROR(SplitPack(partition, *fetched));
    *retry = true;
    return Status::Ok();
  }

  Pack updated = *fetched->pack;
  mutate(&updated);
  MC_ASSIGN_OR_RETURN(SealedPack sealed, crypter_.Seal(updated, fetched->pack_id));
  if (options_.blind_pack_writes) {
    // Figure 10 ablation: read-modify-blind-write (no update-if, no safety).
    const Status s =
        cluster_->Write(options_.table, partition, fetched->pack_id, PackRow(sealed));
    if (s.ok()) {
      CacheAfterWrite(partition, fetched->pack_id, updated, sealed.hash);
    } else {
      CacheInvalidate(partition, fetched->pack_id);
    }
    return s;
  }
  const Status s =
      cluster_->WriteIf(options_.table, partition, fetched->pack_id, PackRow(sealed),
                        LwtCondition::CellEquals(std::string(kHashColumn), fetched->hash));
  if (s.ok()) {
    // Acked LWT: the server now stores exactly `updated` under sealed.hash.
    CacheAfterWrite(partition, fetched->pack_id, updated, sealed.hash);
    return s;
  }
  if (s.IsConditionFailed()) {
    // A concurrent writer moved the pack: our cached image is stale.
    CacheInvalidate(partition, fetched->pack_id);
    *retry = true;  // re-read (Figure 5)
    return Status::Ok();
  }
  if (s.IsUnavailable()) {
    // Ambiguous LWT outcome: the conditional update may have applied before
    // the reported timeout. A blind retry could double-apply a non-idempotent
    // mutation or duplicate a split, so re-read and verify by pack *content*
    // (sealing is randomized — envelope bytes never match across attempts).
    // The cache entry is dropped either way: we cannot know which version the
    // server holds.
    OBS_COUNTER_INC("client.lwt.ambiguous");
    CacheInvalidate(partition, fetched->pack_id);
    auto reread = FetchPackCached(partition, encoded, /*allow_ttl=*/false);
    if (reread.ok()) {
      if (applied(*reread->pack)) {
        OBS_COUNTER_INC("client.lwt.ambiguous_applied");
        return Status::Ok();  // our write landed; the lost ack was the fault
      }
      *retry = true;
      return Status::Ok();
    }
    if (reread.status().IsNotFound() || reread.status().IsUnavailable()) {
      *retry = true;  // can't tell yet; back off and try again
      return Status::Ok();
    }
    return reread.status();
  }
  return s;
}

Status GenericClient::MutateWithRetries(uint64_t key, const std::function<void(Pack*)>& mutate,
                                        const std::function<bool(const Pack&)>& applied,
                                        bool insert_if_new, std::string_view op_name) {
  std::string pack_id;
  Status last = Status::Ok();
  for (int attempt = 0; attempt < options_.max_put_retries; ++attempt) {
    if (attempt > 0) {
      BackoffBeforeRetry(attempt - 1);
    }
    bool retry = false;
    const Status s = TryMutate(key, mutate, applied, insert_if_new, &retry, &pack_id);
    if (s.ok()) {
      if (!retry) {
        return Status::Ok();
      }
      last = Status::Ok();
      OBS_COUNTER_INC("client.put.retries");
      stats_.put_retries.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!s.IsUnavailable()) {
      return s;  // non-retryable (corruption, invalid argument, ...)
    }
    last = s;
    OBS_COUNTER_INC("client.put.unavailable_retries");
    // Same convention as the contention path above: every scheduled retry
    // counts, whatever forced it (see GenericClientStats::put_retries).
    stats_.put_retries.fetch_add(1, std::memory_order_relaxed);
  }
  OBS_COUNTER_INC("client.put.aborts");
  const std::string where =
      " (key=" + std::to_string(key) + ", pack=" + FormatPackId(pack_id) + ")";
  if (!last.ok()) {
    return Status::Unavailable(std::string(op_name) + " ran out of retries: " + last.message() +
                               where);
  }
  return Status::Aborted(std::string(op_name) + " exceeded retry budget under contention" +
                         where);
}

Status GenericClient::Put(uint64_t key, std::string_view value) {
  OBS_SPAN("client.put");
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  // Index-first maintenance: the index entry lands before the primary row,
  // so the index is always a superset of live rows and GetRangeByValue can
  // filter stale entries instead of ever missing a live one.
  if (index_add_hook_) {
    MC_RETURN_IF_ERROR(index_add_hook_(key, value));
  }
  const std::string encoded = EncodeKey64(key);
  const std::string val(value);
  return MutateWithRetries(
      key, [&](Pack* pack) { pack->Upsert(encoded, val); },
      [&](const Pack& pack) {
        auto v = pack.Find(encoded);
        return v.has_value() && *v == val;
      },
      /*insert_if_new=*/true, "put");
}

Status GenericClient::Delete(uint64_t key) {
  OBS_SPAN("client.delete");
  stats_.deletes.fetch_add(1, std::memory_order_relaxed);
  const std::string encoded = EncodeKey64(key);
  return MutateWithRetries(
      key, [&](Pack* pack) { pack->Erase(encoded); },
      [&](const Pack& pack) { return !pack.Find(encoded).has_value(); },
      /*insert_if_new=*/false, "delete");
}

Status GenericClient::BulkLoad(const std::vector<std::pair<uint64_t, std::string>>& rows) {
  // Group rows per hash partition, sort, and cut into packs of pack_rows
  // (or static buckets when packIDs are encrypted). Blind writes: bulk load
  // assumes no concurrent writers, as any initial import does.
  std::map<std::string, std::vector<Pack::Entry>> by_partition;
  for (const auto& [key, value] : rows) {
    const std::string encoded = EncodeKey64(key);
    by_partition[PartitionForKey(encoded, options_.hash_partitions)].push_back(
        Pack::Entry{encoded, value});
  }
  for (auto& [partition, entries] : by_partition) {
    std::sort(entries.begin(), entries.end(),
              [](const Pack::Entry& a, const Pack::Entry& b) { return a.key < b.key; });
    size_t i = 0;
    while (i < entries.size()) {
      std::vector<Pack::Entry> chunk;
      if (packid_cipher_.has_value()) {
        auto first = DecodeKey64(entries[i].key);
        if (!first.ok()) {
          return first.status();
        }
        const uint64_t bucket = packid_cipher_->BucketFor(*first);
        while (i < entries.size()) {
          auto k = DecodeKey64(entries[i].key);
          if (!k.ok()) {
            return k.status();
          }
          if (packid_cipher_->BucketFor(*k) != bucket) {
            break;
          }
          chunk.push_back(std::move(entries[i++]));
        }
      } else {
        const size_t take = std::min(options_.pack_rows, entries.size() - i);
        for (size_t j = 0; j < take; ++j) {
          chunk.push_back(std::move(entries[i++]));
        }
      }
      MC_ASSIGN_OR_RETURN(Pack pack, Pack::FromSorted(std::move(chunk)));
      const std::string stored_id = StoredPackId(partition, pack, pack.entries().front().key);
      MC_ASSIGN_OR_RETURN(SealedPack sealed, crypter_.Seal(pack, stored_id));
      MC_RETURN_IF_ERROR(
          cluster_->Write(options_.table, partition, stored_id, PackRow(sealed)));
    }
  }
  return Status::Ok();
}

// --- Key rotation (docs/KEY_ROTATION.md) --------------------------------------
//
// RotateKeys is a persisted, crash-resumable state machine:
//
//   idle -> announced -> repack (cursor walks partitions) -> verify -> idle
//
// Every stage transition is durably recorded in the reserved "rotation"
// partition before it takes effect, so a crashed or paused rotator resumes
// exactly where it stopped. Re-sealing rides the same LWT envelope-hash gate
// as foreground mutations: a concurrent writer always wins the race and the
// rotator re-reads.

Result<KeyRotationState> GenericClient::LoadRotationState() {
  auto row = cluster_->Read(options_.table, kRotationPartition, kRotationStateKey);
  if (!row.ok()) {
    if (row.status().IsNotFound()) {
      return KeyRotationState{};  // no rotation has ever run against this table
    }
    return row.status();
  }
  auto cell = row->cells.find(kRotationStateColumn);
  if (cell == row->cells.end()) {
    return Status::Corruption("rotation state row missing its cell");
  }
  return ParseRotationState(cell->second.value);
}

Status GenericClient::PersistRotationState(const KeyRotationState& state) {
  if (FaultInjector* injector = cluster_->options().fault_injector;
      injector != nullptr && injector->Fire(FaultPoint::kRotatePersist, options_.table)) {
    OBS_COUNTER_INC("rotation.persist_failures");
    return Status::Unavailable("injected rotation persist failure");
  }
  Row row;
  row.cells[std::string(kRotationStateColumn)] = Cell{EncodeRotationState(state), 0, false};
  return cluster_->Write(options_.table, kRotationPartition, kRotationStateKey, row);
}

Status GenericClient::ResealPack(std::string_view partition, std::string_view pack_id,
                                 uint64_t target) {
  for (int attempt = 0; attempt < options_.rotation_reseal_attempts; ++attempt) {
    if (attempt > 0) {
      BackoffBeforeRetry(attempt - 1);
    }
    auto row = cluster_->Read(options_.table, partition, pack_id);
    if (!row.ok()) {
      if (row.status().IsNotFound()) {
        return Status::Ok();  // deleted since the scan; nothing left to re-seal
      }
      if (row.status().IsUnavailable()) {
        continue;
      }
      return row.status();
    }
    MC_ASSIGN_OR_RETURN(auto cells, ExtractPackCells(*row));
    if (PackCrypter::EnvelopeEpoch(cells.first) >= target) {
      return Status::Ok();  // a foreground writer already carried it forward
    }
    MC_ASSIGN_OR_RETURN(Pack pack, crypter_.Open(cells.first, pack_id));
    if (FaultInjector* injector = cluster_->options().fault_injector;
        injector != nullptr && injector->Fire(FaultPoint::kRotateReseal, pack_id)) {
      return Status::Aborted("injected rotation crash (reseal)");
    }
    MC_ASSIGN_OR_RETURN(SealedPack sealed, crypter_.Seal(pack, pack_id));
    const Status s = cluster_->WriteIf(
        options_.table, partition, pack_id, PackRow(sealed),
        LwtCondition::CellEquals(std::string(kHashColumn), std::string(cells.second)));
    if (s.ok()) {
      OBS_COUNTER_INC("rotation.packs_resealed");
      CacheAfterWrite(partition, pack_id, pack, sealed.hash);
      return Status::Ok();
    }
    if (s.IsConditionFailed()) {
      // Foreground traffic moved the pack under us — it wins; re-read and
      // decide again (the winner may even have sealed at the target already).
      OBS_COUNTER_INC("rotation.reseal_races");
      CacheInvalidate(partition, pack_id);
      continue;
    }
    if (s.IsUnavailable()) {
      OBS_COUNTER_INC("client.lwt.ambiguous");
      CacheInvalidate(partition, pack_id);
      continue;
    }
    return s;
  }
  return Status::Unavailable("rotation reseal ran out of attempts (pack=" +
                             FormatPackId(pack_id) + ")");
}

Status GenericClient::RepackPartition(std::string_view partition, uint64_t target,
                                      size_t* resealed) {
  OBS_SPAN("rotation.repack_partition");
  Result<std::vector<std::pair<std::string, Row>>> rows =
      Status::Unavailable("repack scan never attempted");
  // Inclusive scan of the whole stored-packID space; stored ids (encoded
  // keys, OPE images, PRF output) are all far shorter than 64 bytes.
  const std::string hi(64, '\xff');
  for (int attempt = 0; attempt < options_.max_put_retries; ++attempt) {
    if (attempt > 0) {
      BackoffBeforeRetry(attempt - 1);
    }
    rows = cluster_->ReadRange(options_.table, partition, "", hi);
    if (rows.ok() || !rows.status().IsUnavailable()) {
      break;
    }
  }
  if (!rows.ok()) {
    return rows.status();
  }
  for (const auto& [id, row] : *rows) {
    auto cells = ExtractPackCells(row);
    if (!cells.ok()) {
      return cells.status();
    }
    if (PackCrypter::EnvelopeEpoch(cells->first) >= target) {
      continue;
    }
    MC_RETURN_IF_ERROR(ResealPack(partition, id, target));
    if (resealed != nullptr) {
      ++*resealed;
    }
  }
  return Status::Ok();
}

Status GenericClient::RotateKeys() {
  OBS_SPAN("rotation.run");
  MC_ASSIGN_OR_RETURN(KeyRotationState rs, LoadRotationState());
  // Crash resume: re-apply whatever the durable record says to the in-memory
  // keyring before continuing — a fresh client, or one that crashed between a
  // persist and the matching keyring update, converges from the record.
  if (rs.target > 0) {
    keyring_->AnnounceEpoch(rs.target);
  }
  if (rs.retired_below > 0) {
    MC_RETURN_IF_ERROR(keyring_->RetireBelow(rs.retired_below));
  }
  if (rs.stage == KeyRotationState::kStageIdle) {
    // Begin a fresh rotation to the next epoch. The target is durable before
    // any writer can seal under it: the announcement follows the persist.
    rs.target = keyring_->current_epoch() + 1;
    rs.stage = KeyRotationState::kStageAnnounced;
    rs.cursor = 0;
    MC_RETURN_IF_ERROR(PersistRotationState(rs));
    keyring_->AnnounceEpoch(rs.target);
  }
  if (rs.stage == KeyRotationState::kStageAnnounced) {
    rs.stage = KeyRotationState::kStageRepack;
    rs.cursor = 0;
    MC_RETURN_IF_ERROR(PersistRotationState(rs));
  }
  if (rs.stage == KeyRotationState::kStageRepack) {
    while (rs.cursor < options_.hash_partitions) {
      MC_RETURN_IF_ERROR(
          RepackPartition(PartitionLabel(rs.cursor), rs.target, /*resealed=*/nullptr));
      rs.cursor += 1;
      MC_RETURN_IF_ERROR(PersistRotationState(rs));  // durable cursor: resume here
    }
    rs.stage = KeyRotationState::kStageVerify;
    MC_RETURN_IF_ERROR(PersistRotationState(rs));
  }
  // Verify: wait for in-flight old-epoch seals to drain (a writer that read
  // the old epoch before the announcement may still be mid-write), then sweep
  // until one full pass finds nothing below the target.
  if (!keyring_->WaitForDrainBelow(rs.target, options_.rotation_drain_timeout_millis)) {
    OBS_COUNTER_INC("rotation.drain_timeouts");
    return Status::Unavailable("rotation paused: old-epoch seals did not drain in time");
  }
  bool clean = false;
  for (int pass = 0; pass < options_.rotation_verify_passes && !clean; ++pass) {
    size_t resealed = 0;
    for (int p = 0; p < options_.hash_partitions; ++p) {
      MC_RETURN_IF_ERROR(RepackPartition(PartitionLabel(p), rs.target, &resealed));
    }
    if (resealed == 0) {
      clean = true;
    } else {
      OBS_COUNTER_INC("rotation.verify_stale");
    }
  }
  if (!clean) {
    return Status::Unavailable("rotation paused: verify kept finding stale-epoch packs");
  }
  // Retirement point: persist first, retire after. A crash in between is
  // healed by the resume path above (RetireBelow re-applied from the record).
  rs.stage = KeyRotationState::kStageIdle;
  rs.cursor = 0;
  rs.retired_below = rs.target;
  MC_RETURN_IF_ERROR(PersistRotationState(rs));
  MC_RETURN_IF_ERROR(keyring_->RetireBelow(rs.target));
  OBS_COUNTER_INC("rotation.completed");
  return Status::Ok();
}

Result<KeyRotationState> GenericClient::RotationState() { return LoadRotationState(); }

}  // namespace minicrypt
