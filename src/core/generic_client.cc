#include "src/core/generic_client.h"

#include <algorithm>
#include <map>

#include "src/common/coding.h"
#include "src/obs/metrics.h"

namespace minicrypt {

namespace {

constexpr std::string_view kValueColumn = "v";
constexpr std::string_view kHashColumn = "h";

Row PackRow(const SealedPack& sealed) {
  Row row;
  row.cells[std::string(kValueColumn)] = Cell{sealed.envelope, 0, false};
  row.cells[std::string(kHashColumn)] = Cell{sealed.hash, 0, false};
  return row;
}

Result<std::pair<std::string_view, std::string_view>> ExtractPackCells(const Row& row) {
  auto v = row.cells.find(kValueColumn);
  auto h = row.cells.find(kHashColumn);
  if (v == row.cells.end() || h == row.cells.end()) {
    return Status::Corruption("pack row missing value/hash cells");
  }
  return std::make_pair(std::string_view(v->second.value), std::string_view(h->second.value));
}

// Human-readable pack id for error messages: the decoded key when the id is
// a plain encoded key, hex otherwise (OPE image / PRF output).
std::string FormatPackId(std::string_view id) {
  if (id.empty()) {
    return "<none>";
  }
  if (auto key = DecodeKey64(id); key.ok()) {
    return std::to_string(*key);
  }
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out = "0x";
  for (const char c : id) {
    const auto b = static_cast<unsigned char>(c);
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

constexpr uint64_t kDefaultJitterSeed = 0x6D696E6963727970ULL;  // "minicryp"

}  // namespace

GenericClient::GenericClient(Cluster* cluster, const MiniCryptOptions& options,
                             const SymmetricKey& key)
    : cluster_(cluster),
      options_(options),
      crypter_(options, key),
      clock_(cluster->options().clock),
      backoff_(options.retry_backoff_base_micros, options.retry_backoff_max_micros,
               options.retry_jitter_seed != 0 ? options.retry_jitter_seed : kDefaultJitterSeed) {
  if (options_.encrypt_pack_ids) {
    packid_cipher_.emplace(options_, key);
  }
  if (options_.ope_pack_ids) {
    ope_.emplace(key.Derive("packid-ope:" + options_.table));
  }
}

void GenericClient::BackoffBeforeRetry(int attempt) {
  uint64_t delay = 0;
  {
    std::lock_guard<std::mutex> lock(backoff_mu_);
    delay = backoff_.NextDelayMicros(attempt);
  }
  if (delay > 0) {
    OBS_COUNTER_ADD("client.backoff_micros", delay);
    clock_->SleepMicros(delay);
  }
}

std::string GenericClient::StoredKeyFor(std::string_view encoded_key) const {
  if (!ope_.has_value()) {
    return std::string(encoded_key);
  }
  auto key = DecodeKey64(encoded_key);
  if (!key.ok()) {
    return std::string(encoded_key);
  }
  return ope_->Encrypt(*key);
}

Status GenericClient::CreateTable() {
  // Client-encrypted tables gain nothing from server-side compression.
  return cluster_->CreateTable(options_.table, /*server_compression=*/false);
}

std::string GenericClient::StoredPackId(std::string_view partition, const Pack& pack,
                                        std::string_view fallback_id) const {
  if (packid_cipher_.has_value()) {
    // Static-bucket mode: the stored ID is the PRF of the bucket that the
    // pack's keys belong to.
    auto min_key = pack.MinKey();
    const std::string_view id_source = min_key.has_value() ? *min_key : fallback_id;
    auto key = DecodeKey64(id_source);
    if (key.ok()) {
      return packid_cipher_->EncryptBucket(packid_cipher_->BucketFor(*key));
    }
  }
  auto min_key = pack.MinKey();
  return StoredKeyFor(min_key.has_value() ? *min_key : fallback_id);
}

Result<GenericClient::FetchedPack> GenericClient::FetchPackFor(std::string_view partition,
                                                               std::string_view encoded_key) {
  // Covers the server round trip (floor query or direct read) plus
  // Open (pack.decrypt + pack.decompress, timed separately).
  OBS_SPAN("pack.fetch");
  std::string stored_id;
  Row row;
  if (packid_cipher_.has_value()) {
    // Direct lookup of the static bucket's PRF image (no order available).
    auto key = DecodeKey64(encoded_key);
    if (!key.ok()) {
      return key.status();
    }
    stored_id = packid_cipher_->EncryptBucket(packid_cipher_->BucketFor(*key));
    MC_ASSIGN_OR_RETURN(row, cluster_->Read(options_.table, partition, stored_id));
  } else {
    // Paper Figure 3: SELECT ... WHERE packID <= key ORDER BY packID DESC
    // LIMIT 1, served by the substrate's floor query. In OPE mode the floor
    // runs on the (order-preserving) images, which is the whole point.
    MC_ASSIGN_OR_RETURN(auto found, cluster_->ReadFloor(options_.table, partition,
                                                        StoredKeyFor(encoded_key)));
    stored_id = found.first;
    row = std::move(found.second);
  }
  MC_ASSIGN_OR_RETURN(auto cells, ExtractPackCells(row));
  MC_ASSIGN_OR_RETURN(Pack pack, crypter_.Open(cells.first));
  FetchedPack out;
  out.pack_id = std::move(stored_id);
  out.pack = std::move(pack);
  out.hash = std::string(cells.second);
  return out;
}

Result<std::string> GenericClient::Get(uint64_t key) {
  OBS_SPAN("client.get");
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  const std::string encoded = EncodeKey64(key);
  const std::string partition = PartitionForKey(encoded, options_.hash_partitions);
  Result<FetchedPack> fetched = Status::Unavailable("get never attempted");
  for (int attempt = 0; attempt < options_.max_put_retries; ++attempt) {
    if (attempt > 0) {
      OBS_COUNTER_INC("client.get.unavailable_retries");
      BackoffBeforeRetry(attempt - 1);
    }
    fetched = FetchPackFor(partition, encoded);
    if (fetched.ok() || !fetched.status().IsUnavailable()) {
      break;  // only transient unavailability is worth retrying
    }
  }
  if (!fetched.ok()) {
    if (fetched.status().IsUnavailable()) {
      return Status::Unavailable("get ran out of retries: " + fetched.status().message() +
                                 " (key=" + std::to_string(key) + ")");
    }
    return fetched.status();
  }
  auto value = fetched->pack.Find(encoded);
  if (!value.has_value()) {
    return Status::NotFound("key not present in its pack");
  }
  return std::string(*value);
}

Result<std::vector<std::pair<uint64_t, std::string>>> GenericClient::GetRange(uint64_t low,
                                                                              uint64_t high) {
  OBS_SPAN("client.range");
  stats_.range_queries.fetch_add(1, std::memory_order_relaxed);
  if (packid_cipher_.has_value()) {
    return Status::InvalidArgument("range queries unsupported with encrypted packIDs");
  }
  if (low > high) {
    return Status::InvalidArgument("low > high");
  }
  const std::string klo = EncodeKey64(low);
  const std::string khi = EncodeKey64(high);
  // Server-side bounds live in stored-packID space (identity, or OPE images).
  const std::string slo = StoredKeyFor(klo);
  const std::string shi = StoredKeyFor(khi);

  std::vector<std::pair<uint64_t, std::string>> out;
  // Paper §7: a range query is issued against every hash partition, because
  // contiguous keys are spread across them.
  for (int p = 0; p < options_.hash_partitions; ++p) {
    const std::string partition = PartitionLabel(p);
    Result<std::vector<std::pair<std::string, Row>>> rows =
        Status::Unavailable("range never attempted");
    for (int attempt = 0; attempt < options_.max_put_retries; ++attempt) {
      if (attempt > 0) {
        OBS_COUNTER_INC("client.get.unavailable_retries");
        BackoffBeforeRetry(attempt - 1);
      }
      rows = cluster_->ReadRange(options_.table, partition, slo, shi);
      if (rows.ok() || !rows.status().IsUnavailable()) {
        break;
      }
    }
    if (!rows.ok()) {
      return rows.status();
    }

    std::vector<std::pair<std::string, Pack>> packs;  // (stored packID, pack)
    packs.reserve(rows->size() + 1);
    bool need_floor = true;  // paper Figure 4, line 5
    for (auto& [id, row] : *rows) {
      if (id == slo) {
        need_floor = false;
      }
      auto cells = ExtractPackCells(row);
      if (!cells.ok()) {
        return cells.status();
      }
      MC_ASSIGN_OR_RETURN(Pack pack, crypter_.Open(cells->first));
      packs.emplace_back(id, std::move(pack));
    }
    if (need_floor) {
      auto fetched = FetchPackFor(partition, klo);
      if (fetched.ok()) {
        // Skip if it duplicates a pack already in the result set.
        const bool duplicate =
            !rows->empty() && fetched->pack_id >= slo && fetched->pack_id <= shi;
        if (!duplicate) {
          packs.emplace_back(fetched->pack_id, std::move(fetched->pack));
        }
      } else if (!fetched.status().IsNotFound()) {
        return fetched.status();
      }
    }
    // A key is only emitted from its *authoritative* pack — the one a floor
    // query would route it to (largest packID <= key). After an incomplete
    // split (Figure 6, interrupted between steps 3 and 5) the left pack still
    // holds stale copies of the right half; point reads never see them, and
    // range reads must apply the same routing or they would surface stale
    // values and resurrect deleted keys.
    std::vector<std::string> ids;
    ids.reserve(packs.size());
    for (const auto& [id, pack] : packs) {
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    for (const auto& [id, pack] : packs) {
      for (const auto& entry : pack.entries()) {
        if (entry.key >= klo && entry.key <= khi) {
          auto it = std::upper_bound(ids.begin(), ids.end(), StoredKeyFor(entry.key));
          if (it == ids.begin() || *(it - 1) != id) {
            continue;  // shadowed copy; the authoritative pack carries this key
          }
          auto key = DecodeKey64(entry.key);
          if (!key.ok()) {
            return key.status();
          }
          out.emplace_back(*key, entry.value);
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

Status GenericClient::InsertNewPack(std::string_view partition, std::string_view pack_id,
                                    const Pack& pack) {
  MC_ASSIGN_OR_RETURN(SealedPack sealed, crypter_.Seal(pack));
  return cluster_->WriteIf(options_.table, partition, pack_id, PackRow(sealed),
                           LwtCondition::NotExists());
}

Status GenericClient::SplitPack(std::string_view partition, const FetchedPack& fetched) {
  OBS_SPAN("pack.split");
  OBS_COUNTER_INC("client.splits");
  stats_.splits.fetch_add(1, std::memory_order_relaxed);
  MC_ASSIGN_OR_RETURN(auto halves, fetched.pack.SplitDeterministic());
  const Pack& left = halves.first;
  const Pack& right = halves.second;

  // Bound on resolving one split step's ambiguous outcomes before handing
  // the whole operation back to the outer retry loop.
  constexpr int kSplitStepAttempts = 8;

  // Figure 6 step 3: INSERT right IF NOT EXISTS. Losing the race is fine —
  // the winner inserted bytes identical to ours (deterministic split). An
  // ambiguous (Unavailable) outcome must be resolved before step 5, though:
  // truncating the left pack while the right one does not exist would lose
  // the tail keys.
  auto right_id = right.MinKey();
  if (!right_id.has_value()) {
    return Status::Internal("split produced empty right pack");
  }
  const std::string right_stored = StoredKeyFor(*right_id);
  Status s = Status::Ok();
  bool right_in_place = false;
  for (int attempt = 0; attempt < kSplitStepAttempts; ++attempt) {
    if (attempt > 0) {
      BackoffBeforeRetry(attempt - 1);
    }
    s = InsertNewPack(partition, right_stored, right);
    if (s.ok() || s.IsConditionFailed() || s.IsAlreadyExists()) {
      right_in_place = true;
      break;
    }
    if (!s.IsUnavailable()) {
      return s;
    }
    OBS_COUNTER_INC("client.lwt.ambiguous");
    auto probe = cluster_->Read(options_.table, partition, right_stored);
    if (probe.ok()) {
      right_in_place = true;  // our ambiguous insert (or a peer's) landed
      break;
    }
    if (!probe.status().IsNotFound() && !probe.status().IsUnavailable()) {
      return probe.status();
    }
  }
  if (!right_in_place) {
    return s;
  }

  if (split_fail_point_ == SplitFailPoint::kAfterRightInsert) {
    // Simulated client crash between steps 3 and 5 of Figure 6: the right
    // half now exists twice (new pack + stale copy in the original). The
    // paper argues this is safe; tests exercise it.
    return Status::Aborted("injected split failure");
  }

  // Figure 6 step 5: UPDATE left IF hash = h, driven to completion across
  // ambiguous outcomes — an abandoned truncation leaves the right half
  // duplicated in this pack, where range queries could surface the stale
  // copies.
  MC_ASSIGN_OR_RETURN(SealedPack sealed_left, crypter_.Seal(left));
  for (int attempt = 0; attempt < kSplitStepAttempts; ++attempt) {
    if (attempt > 0) {
      BackoffBeforeRetry(attempt - 1);
    }
    s = cluster_->WriteIf(options_.table, partition, fetched.pack_id, PackRow(sealed_left),
                          LwtCondition::CellEquals(std::string(kHashColumn), fetched.hash));
    // ConditionFailed: the pack changed under us. An oversized pack is only
    // ever changed by truncation (every writer splits before mutating one),
    // so another splitter — or our own ambiguously-applied attempt — already
    // finished the job.
    if (s.ok() || s.IsConditionFailed()) {
      return Status::Ok();
    }
    if (!s.IsUnavailable()) {
      return s;
    }
    OBS_COUNTER_INC("client.lwt.ambiguous");
    auto row = cluster_->Read(options_.table, partition, fetched.pack_id);
    if (!row.ok()) {
      if (row.status().IsUnavailable()) {
        continue;
      }
      return row.status();
    }
    auto cells = ExtractPackCells(*row);
    if (!cells.ok()) {
      return cells.status();
    }
    if (cells->second != fetched.hash) {
      return Status::Ok();  // hash moved: the truncation (ours or a peer's) applied
    }
  }
  return s;
}

Status GenericClient::TryMutate(uint64_t key, const std::function<void(Pack*)>& mutate,
                                const std::function<bool(const Pack&)>& applied,
                                bool insert_if_new, bool* retry, std::string* pack_id) {
  *retry = false;
  const std::string encoded = EncodeKey64(key);
  const std::string partition = PartitionForKey(encoded, options_.hash_partitions);

  auto fetched = FetchPackFor(partition, encoded);
  if (!fetched.ok()) {
    if (!fetched.status().IsNotFound()) {
      return fetched.status();
    }
    if (!insert_if_new) {
      return Status::Ok();  // deleting a key that has no pack: nothing to do
    }
    // No pack at or below the key in this partition: create a fresh pack
    // whose ID is the key itself.
    Pack fresh;
    mutate(&fresh);
    if (fresh.empty()) {
      return Status::Ok();
    }
    const std::string stored_id = StoredPackId(partition, fresh, encoded);
    if (pack_id != nullptr) {
      *pack_id = stored_id;
    }
    Status s = InsertNewPack(partition, stored_id, fresh);
    if (s.IsConditionFailed() || s.IsAlreadyExists()) {
      *retry = true;  // another client created it first; re-read and merge in
      return Status::Ok();
    }
    if (s.IsUnavailable()) {
      // Ambiguous outcome of INSERT IF NOT EXISTS: the pack may or may not
      // exist now. Re-reading (the retry) resolves it either way — if our
      // insert landed, the next attempt finds the pack and verifies.
      OBS_COUNTER_INC("client.lwt.ambiguous");
      *retry = true;
      return Status::Ok();
    }
    return s;
  }
  if (pack_id != nullptr) {
    *pack_id = fetched->pack_id;
  }

  // Paper Figure 5 line 4: split first when the pack is oversized, then
  // retry the original operation.
  if (!packid_cipher_.has_value() && fetched->pack.size() > options_.EffectiveMaxKeys()) {
    MC_RETURN_IF_ERROR(SplitPack(partition, *fetched));
    *retry = true;
    return Status::Ok();
  }

  Pack updated = fetched->pack;
  mutate(&updated);
  MC_ASSIGN_OR_RETURN(SealedPack sealed, crypter_.Seal(updated));
  if (options_.blind_pack_writes) {
    // Figure 10 ablation: read-modify-blind-write (no update-if, no safety).
    return cluster_->Write(options_.table, partition, fetched->pack_id, PackRow(sealed));
  }
  const Status s =
      cluster_->WriteIf(options_.table, partition, fetched->pack_id, PackRow(sealed),
                        LwtCondition::CellEquals(std::string(kHashColumn), fetched->hash));
  if (s.IsConditionFailed()) {
    *retry = true;  // concurrent writer touched the pack; re-read (Figure 5)
    return Status::Ok();
  }
  if (s.IsUnavailable()) {
    // Ambiguous LWT outcome: the conditional update may have applied before
    // the reported timeout. A blind retry could double-apply a non-idempotent
    // mutation or duplicate a split, so re-read and verify by pack *content*
    // (sealing is randomized — envelope bytes never match across attempts).
    OBS_COUNTER_INC("client.lwt.ambiguous");
    auto reread = FetchPackFor(partition, encoded);
    if (reread.ok()) {
      if (applied(reread->pack)) {
        OBS_COUNTER_INC("client.lwt.ambiguous_applied");
        return Status::Ok();  // our write landed; the lost ack was the fault
      }
      *retry = true;
      return Status::Ok();
    }
    if (reread.status().IsNotFound() || reread.status().IsUnavailable()) {
      *retry = true;  // can't tell yet; back off and try again
      return Status::Ok();
    }
    return reread.status();
  }
  return s;
}

Status GenericClient::MutateWithRetries(uint64_t key, const std::function<void(Pack*)>& mutate,
                                        const std::function<bool(const Pack&)>& applied,
                                        bool insert_if_new, std::string_view op_name) {
  std::string pack_id;
  Status last = Status::Ok();
  for (int attempt = 0; attempt < options_.max_put_retries; ++attempt) {
    if (attempt > 0) {
      BackoffBeforeRetry(attempt - 1);
    }
    bool retry = false;
    const Status s = TryMutate(key, mutate, applied, insert_if_new, &retry, &pack_id);
    if (s.ok()) {
      if (!retry) {
        return Status::Ok();
      }
      last = Status::Ok();
      OBS_COUNTER_INC("client.put.retries");
      stats_.put_retries.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!s.IsUnavailable()) {
      return s;  // non-retryable (corruption, invalid argument, ...)
    }
    last = s;
    OBS_COUNTER_INC("client.put.unavailable_retries");
  }
  OBS_COUNTER_INC("client.put.aborts");
  const std::string where =
      " (key=" + std::to_string(key) + ", pack=" + FormatPackId(pack_id) + ")";
  if (!last.ok()) {
    return Status::Unavailable(std::string(op_name) + " ran out of retries: " + last.message() +
                               where);
  }
  return Status::Aborted(std::string(op_name) + " exceeded retry budget under contention" +
                         where);
}

Status GenericClient::Put(uint64_t key, std::string_view value) {
  OBS_SPAN("client.put");
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  const std::string encoded = EncodeKey64(key);
  const std::string val(value);
  return MutateWithRetries(
      key, [&](Pack* pack) { pack->Upsert(encoded, val); },
      [&](const Pack& pack) {
        auto v = pack.Find(encoded);
        return v.has_value() && *v == val;
      },
      /*insert_if_new=*/true, "put");
}

Status GenericClient::Delete(uint64_t key) {
  OBS_SPAN("client.delete");
  stats_.deletes.fetch_add(1, std::memory_order_relaxed);
  const std::string encoded = EncodeKey64(key);
  return MutateWithRetries(
      key, [&](Pack* pack) { pack->Erase(encoded); },
      [&](const Pack& pack) { return !pack.Find(encoded).has_value(); },
      /*insert_if_new=*/false, "delete");
}

Status GenericClient::BulkLoad(const std::vector<std::pair<uint64_t, std::string>>& rows) {
  // Group rows per hash partition, sort, and cut into packs of pack_rows
  // (or static buckets when packIDs are encrypted). Blind writes: bulk load
  // assumes no concurrent writers, as any initial import does.
  std::map<std::string, std::vector<Pack::Entry>> by_partition;
  for (const auto& [key, value] : rows) {
    const std::string encoded = EncodeKey64(key);
    by_partition[PartitionForKey(encoded, options_.hash_partitions)].push_back(
        Pack::Entry{encoded, value});
  }
  for (auto& [partition, entries] : by_partition) {
    std::sort(entries.begin(), entries.end(),
              [](const Pack::Entry& a, const Pack::Entry& b) { return a.key < b.key; });
    size_t i = 0;
    while (i < entries.size()) {
      std::vector<Pack::Entry> chunk;
      if (packid_cipher_.has_value()) {
        auto first = DecodeKey64(entries[i].key);
        if (!first.ok()) {
          return first.status();
        }
        const uint64_t bucket = packid_cipher_->BucketFor(*first);
        while (i < entries.size()) {
          auto k = DecodeKey64(entries[i].key);
          if (!k.ok()) {
            return k.status();
          }
          if (packid_cipher_->BucketFor(*k) != bucket) {
            break;
          }
          chunk.push_back(std::move(entries[i++]));
        }
      } else {
        const size_t take = std::min(options_.pack_rows, entries.size() - i);
        for (size_t j = 0; j < take; ++j) {
          chunk.push_back(std::move(entries[i++]));
        }
      }
      MC_ASSIGN_OR_RETURN(Pack pack, Pack::FromSorted(std::move(chunk)));
      MC_ASSIGN_OR_RETURN(SealedPack sealed, crypter_.Seal(pack));
      const std::string stored_id = StoredPackId(partition, pack, pack.entries().front().key);
      MC_RETURN_IF_ERROR(
          cluster_->Write(options_.table, partition, stored_id, PackRow(sealed)));
    }
  }
  return Status::Ok();
}

}  // namespace minicrypt
