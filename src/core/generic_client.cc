#include "src/core/generic_client.h"

#include <algorithm>
#include <map>

#include "src/common/coding.h"
#include "src/obs/metrics.h"

namespace minicrypt {

namespace {

constexpr std::string_view kValueColumn = "v";
constexpr std::string_view kHashColumn = "h";

Row PackRow(const SealedPack& sealed) {
  Row row;
  row.cells[std::string(kValueColumn)] = Cell{sealed.envelope, 0, false};
  row.cells[std::string(kHashColumn)] = Cell{sealed.hash, 0, false};
  return row;
}

Result<std::pair<std::string_view, std::string_view>> ExtractPackCells(const Row& row) {
  auto v = row.cells.find(kValueColumn);
  auto h = row.cells.find(kHashColumn);
  if (v == row.cells.end() || h == row.cells.end()) {
    return Status::Corruption("pack row missing value/hash cells");
  }
  return std::make_pair(std::string_view(v->second.value), std::string_view(h->second.value));
}

}  // namespace

GenericClient::GenericClient(Cluster* cluster, const MiniCryptOptions& options,
                             const SymmetricKey& key)
    : cluster_(cluster), options_(options), crypter_(options, key) {
  if (options_.encrypt_pack_ids) {
    packid_cipher_.emplace(options_, key);
  }
  if (options_.ope_pack_ids) {
    ope_.emplace(key.Derive("packid-ope:" + options_.table));
  }
}

std::string GenericClient::StoredKeyFor(std::string_view encoded_key) const {
  if (!ope_.has_value()) {
    return std::string(encoded_key);
  }
  auto key = DecodeKey64(encoded_key);
  if (!key.ok()) {
    return std::string(encoded_key);
  }
  return ope_->Encrypt(*key);
}

Status GenericClient::CreateTable() {
  // Client-encrypted tables gain nothing from server-side compression.
  return cluster_->CreateTable(options_.table, /*server_compression=*/false);
}

std::string GenericClient::StoredPackId(std::string_view partition, const Pack& pack,
                                        std::string_view fallback_id) const {
  if (packid_cipher_.has_value()) {
    // Static-bucket mode: the stored ID is the PRF of the bucket that the
    // pack's keys belong to.
    auto min_key = pack.MinKey();
    const std::string_view id_source = min_key.has_value() ? *min_key : fallback_id;
    auto key = DecodeKey64(id_source);
    if (key.ok()) {
      return packid_cipher_->EncryptBucket(packid_cipher_->BucketFor(*key));
    }
  }
  auto min_key = pack.MinKey();
  return StoredKeyFor(min_key.has_value() ? *min_key : fallback_id);
}

Result<GenericClient::FetchedPack> GenericClient::FetchPackFor(std::string_view partition,
                                                               std::string_view encoded_key) {
  // Covers the server round trip (floor query or direct read) plus
  // Open (pack.decrypt + pack.decompress, timed separately).
  OBS_SPAN("pack.fetch");
  std::string stored_id;
  Row row;
  if (packid_cipher_.has_value()) {
    // Direct lookup of the static bucket's PRF image (no order available).
    auto key = DecodeKey64(encoded_key);
    if (!key.ok()) {
      return key.status();
    }
    stored_id = packid_cipher_->EncryptBucket(packid_cipher_->BucketFor(*key));
    MC_ASSIGN_OR_RETURN(row, cluster_->Read(options_.table, partition, stored_id));
  } else {
    // Paper Figure 3: SELECT ... WHERE packID <= key ORDER BY packID DESC
    // LIMIT 1, served by the substrate's floor query. In OPE mode the floor
    // runs on the (order-preserving) images, which is the whole point.
    MC_ASSIGN_OR_RETURN(auto found, cluster_->ReadFloor(options_.table, partition,
                                                        StoredKeyFor(encoded_key)));
    stored_id = found.first;
    row = std::move(found.second);
  }
  MC_ASSIGN_OR_RETURN(auto cells, ExtractPackCells(row));
  MC_ASSIGN_OR_RETURN(Pack pack, crypter_.Open(cells.first));
  FetchedPack out;
  out.pack_id = std::move(stored_id);
  out.pack = std::move(pack);
  out.hash = std::string(cells.second);
  return out;
}

Result<std::string> GenericClient::Get(uint64_t key) {
  OBS_SPAN("client.get");
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  const std::string encoded = EncodeKey64(key);
  const std::string partition = PartitionForKey(encoded, options_.hash_partitions);
  MC_ASSIGN_OR_RETURN(FetchedPack fetched, FetchPackFor(partition, encoded));
  auto value = fetched.pack.Find(encoded);
  if (!value.has_value()) {
    return Status::NotFound("key not present in its pack");
  }
  return std::string(*value);
}

Result<std::vector<std::pair<uint64_t, std::string>>> GenericClient::GetRange(uint64_t low,
                                                                              uint64_t high) {
  OBS_SPAN("client.range");
  stats_.range_queries.fetch_add(1, std::memory_order_relaxed);
  if (packid_cipher_.has_value()) {
    return Status::InvalidArgument("range queries unsupported with encrypted packIDs");
  }
  if (low > high) {
    return Status::InvalidArgument("low > high");
  }
  const std::string klo = EncodeKey64(low);
  const std::string khi = EncodeKey64(high);
  // Server-side bounds live in stored-packID space (identity, or OPE images).
  const std::string slo = StoredKeyFor(klo);
  const std::string shi = StoredKeyFor(khi);

  std::vector<std::pair<uint64_t, std::string>> out;
  // Paper §7: a range query is issued against every hash partition, because
  // contiguous keys are spread across them.
  for (int p = 0; p < options_.hash_partitions; ++p) {
    const std::string partition = PartitionLabel(p);
    MC_ASSIGN_OR_RETURN(auto rows, cluster_->ReadRange(options_.table, partition, slo, shi));

    std::vector<Pack> packs;
    packs.reserve(rows.size() + 1);
    bool need_floor = true;  // paper Figure 4, line 5
    for (auto& [id, row] : rows) {
      if (id == slo) {
        need_floor = false;
      }
      auto cells = ExtractPackCells(row);
      if (!cells.ok()) {
        return cells.status();
      }
      MC_ASSIGN_OR_RETURN(Pack pack, crypter_.Open(cells->first));
      packs.push_back(std::move(pack));
    }
    if (need_floor) {
      auto fetched = FetchPackFor(partition, klo);
      if (fetched.ok()) {
        // Skip if it duplicates a pack already in the result set.
        const bool duplicate =
            !rows.empty() && fetched->pack_id >= slo && fetched->pack_id <= shi;
        if (!duplicate) {
          packs.push_back(std::move(fetched->pack));
        }
      } else if (!fetched.status().IsNotFound()) {
        return fetched.status();
      }
    }
    for (const Pack& pack : packs) {
      for (const auto& entry : pack.entries()) {
        if (entry.key >= klo && entry.key <= khi) {
          auto key = DecodeKey64(entry.key);
          if (!key.ok()) {
            return key.status();
          }
          out.emplace_back(*key, entry.value);
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

Status GenericClient::InsertNewPack(std::string_view partition, std::string_view pack_id,
                                    const Pack& pack) {
  MC_ASSIGN_OR_RETURN(SealedPack sealed, crypter_.Seal(pack));
  return cluster_->WriteIf(options_.table, partition, pack_id, PackRow(sealed),
                           LwtCondition::NotExists());
}

Status GenericClient::SplitPack(std::string_view partition, const FetchedPack& fetched) {
  OBS_SPAN("pack.split");
  OBS_COUNTER_INC("client.splits");
  stats_.splits.fetch_add(1, std::memory_order_relaxed);
  MC_ASSIGN_OR_RETURN(auto halves, fetched.pack.SplitDeterministic());
  const Pack& left = halves.first;
  const Pack& right = halves.second;

  // Figure 6 step 3: INSERT right IF NOT EXISTS. Losing the race is fine —
  // the winner inserted bytes identical to ours (deterministic split).
  auto right_id = right.MinKey();
  if (!right_id.has_value()) {
    return Status::Internal("split produced empty right pack");
  }
  Status s = InsertNewPack(partition, StoredKeyFor(*right_id), right);
  if (!s.ok() && !s.IsConditionFailed() && !s.IsAlreadyExists()) {
    return s;
  }

  if (split_fail_point_ == SplitFailPoint::kAfterRightInsert) {
    // Simulated client crash between steps 3 and 5 of Figure 6: the right
    // half now exists twice (new pack + stale copy in the original). The
    // paper argues this is safe; tests exercise it.
    return Status::Aborted("injected split failure");
  }

  // Figure 6 step 5: UPDATE left IF hash = h. A failure means someone else
  // completed the split (or updated the pack) first; the caller re-reads.
  MC_ASSIGN_OR_RETURN(SealedPack sealed_left, crypter_.Seal(left));
  s = cluster_->WriteIf(options_.table, partition, fetched.pack_id, PackRow(sealed_left),
                        LwtCondition::CellEquals(std::string(kHashColumn), fetched.hash));
  if (!s.ok() && !s.IsConditionFailed()) {
    return s;
  }
  return Status::Ok();
}

Status GenericClient::TryMutate(uint64_t key, const std::function<void(Pack*)>& mutate,
                                bool insert_if_new, bool* retry) {
  *retry = false;
  const std::string encoded = EncodeKey64(key);
  const std::string partition = PartitionForKey(encoded, options_.hash_partitions);

  auto fetched = FetchPackFor(partition, encoded);
  if (!fetched.ok()) {
    if (!fetched.status().IsNotFound()) {
      return fetched.status();
    }
    if (!insert_if_new) {
      return Status::Ok();  // deleting a key that has no pack: nothing to do
    }
    // No pack at or below the key in this partition: create a fresh pack
    // whose ID is the key itself.
    Pack fresh;
    mutate(&fresh);
    if (fresh.empty()) {
      return Status::Ok();
    }
    const std::string stored_id = StoredPackId(partition, fresh, encoded);
    Status s = InsertNewPack(partition, stored_id, fresh);
    if (s.IsConditionFailed() || s.IsAlreadyExists()) {
      *retry = true;  // another client created it first; re-read and merge in
      return Status::Ok();
    }
    return s;
  }

  // Paper Figure 5 line 4: split first when the pack is oversized, then
  // retry the original operation.
  if (!packid_cipher_.has_value() && fetched->pack.size() > options_.EffectiveMaxKeys()) {
    MC_RETURN_IF_ERROR(SplitPack(partition, *fetched));
    *retry = true;
    return Status::Ok();
  }

  Pack updated = fetched->pack;
  mutate(&updated);
  MC_ASSIGN_OR_RETURN(SealedPack sealed, crypter_.Seal(updated));
  if (options_.blind_pack_writes) {
    // Figure 10 ablation: read-modify-blind-write (no update-if, no safety).
    return cluster_->Write(options_.table, partition, fetched->pack_id, PackRow(sealed));
  }
  const Status s =
      cluster_->WriteIf(options_.table, partition, fetched->pack_id, PackRow(sealed),
                        LwtCondition::CellEquals(std::string(kHashColumn), fetched->hash));
  if (s.IsConditionFailed()) {
    *retry = true;  // concurrent writer touched the pack; re-read (Figure 5)
    return Status::Ok();
  }
  return s;
}

Status GenericClient::Put(uint64_t key, std::string_view value) {
  OBS_SPAN("client.put");
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  const std::string encoded = EncodeKey64(key);
  const std::string val(value);
  for (int attempt = 0; attempt < options_.max_put_retries; ++attempt) {
    bool retry = false;
    MC_RETURN_IF_ERROR(TryMutate(
        key, [&](Pack* pack) { pack->Upsert(encoded, val); }, /*insert_if_new=*/true, &retry));
    if (!retry) {
      return Status::Ok();
    }
    OBS_COUNTER_INC("client.put.retries");
    stats_.put_retries.fetch_add(1, std::memory_order_relaxed);
  }
  OBS_COUNTER_INC("client.put.aborts");
  return Status::Aborted("put exceeded retry budget under contention");
}

Status GenericClient::Delete(uint64_t key) {
  OBS_SPAN("client.delete");
  stats_.deletes.fetch_add(1, std::memory_order_relaxed);
  const std::string encoded = EncodeKey64(key);
  for (int attempt = 0; attempt < options_.max_put_retries; ++attempt) {
    bool retry = false;
    MC_RETURN_IF_ERROR(TryMutate(
        key, [&](Pack* pack) { pack->Erase(encoded); }, /*insert_if_new=*/false, &retry));
    if (!retry) {
      return Status::Ok();
    }
    OBS_COUNTER_INC("client.put.retries");
    stats_.put_retries.fetch_add(1, std::memory_order_relaxed);
  }
  OBS_COUNTER_INC("client.put.aborts");
  return Status::Aborted("delete exceeded retry budget under contention");
}

Status GenericClient::BulkLoad(const std::vector<std::pair<uint64_t, std::string>>& rows) {
  // Group rows per hash partition, sort, and cut into packs of pack_rows
  // (or static buckets when packIDs are encrypted). Blind writes: bulk load
  // assumes no concurrent writers, as any initial import does.
  std::map<std::string, std::vector<Pack::Entry>> by_partition;
  for (const auto& [key, value] : rows) {
    const std::string encoded = EncodeKey64(key);
    by_partition[PartitionForKey(encoded, options_.hash_partitions)].push_back(
        Pack::Entry{encoded, value});
  }
  for (auto& [partition, entries] : by_partition) {
    std::sort(entries.begin(), entries.end(),
              [](const Pack::Entry& a, const Pack::Entry& b) { return a.key < b.key; });
    size_t i = 0;
    while (i < entries.size()) {
      std::vector<Pack::Entry> chunk;
      if (packid_cipher_.has_value()) {
        auto first = DecodeKey64(entries[i].key);
        if (!first.ok()) {
          return first.status();
        }
        const uint64_t bucket = packid_cipher_->BucketFor(*first);
        while (i < entries.size()) {
          auto k = DecodeKey64(entries[i].key);
          if (!k.ok()) {
            return k.status();
          }
          if (packid_cipher_->BucketFor(*k) != bucket) {
            break;
          }
          chunk.push_back(std::move(entries[i++]));
        }
      } else {
        const size_t take = std::min(options_.pack_rows, entries.size() - i);
        for (size_t j = 0; j < take; ++j) {
          chunk.push_back(std::move(entries[i++]));
        }
      }
      MC_ASSIGN_OR_RETURN(Pack pack, Pack::FromSorted(std::move(chunk)));
      MC_ASSIGN_OR_RETURN(SealedPack sealed, crypter_.Seal(pack));
      const std::string stored_id = StoredPackId(partition, pack, pack.entries().front().key);
      MC_RETURN_IF_ERROR(
          cluster_->Write(options_.table, partition, stored_id, PackRow(sealed)));
    }
  }
  return Status::Ok();
}

}  // namespace minicrypt
