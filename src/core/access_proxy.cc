#include "src/core/access_proxy.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace minicrypt {

AccessProxy::AccessProxy(Cluster* cluster, const MiniCryptOptions& options,
                         const SymmetricKey& key)
    : client_(cluster, options, key) {}

void AccessProxy::AddGrant(std::string_view principal, Grant grant) {
  std::lock_guard<std::mutex> lock(mu_);
  grants_[std::string(principal)].push_back(grant);
}

void AccessProxy::RevokePrincipal(std::string_view principal) {
  std::lock_guard<std::mutex> lock(mu_);
  grants_.erase(std::string(principal));
}

bool AccessProxy::Allowed(std::string_view principal, uint64_t key,
                          Permission permission) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = grants_.find(principal);
  if (it == grants_.end()) {
    return false;
  }
  for (const Grant& grant : it->second) {
    if (key >= grant.low && key <= grant.high &&
        (grant.permissions & static_cast<uint8_t>(permission)) != 0) {
      return true;
    }
  }
  return false;
}

Result<std::string> AccessProxy::Get(std::string_view principal, uint64_t key) {
  OBS_SPAN("proxy.get");
  if (!Allowed(principal, key, Permission::kRead)) {
    OBS_COUNTER_INC("proxy.denied");
    return Status::InvalidArgument("principal lacks read grant for key");
  }
  OBS_COUNTER_INC("proxy.allowed");
  return client_.Get(key);
}

Status AccessProxy::Put(std::string_view principal, uint64_t key, std::string_view value) {
  OBS_SPAN("proxy.put");
  if (!Allowed(principal, key, Permission::kWrite)) {
    OBS_COUNTER_INC("proxy.denied");
    return Status::InvalidArgument("principal lacks write grant for key");
  }
  OBS_COUNTER_INC("proxy.allowed");
  return client_.Put(key, value);
}

Status AccessProxy::Delete(std::string_view principal, uint64_t key) {
  OBS_SPAN("proxy.delete");
  if (!Allowed(principal, key, Permission::kDelete)) {
    OBS_COUNTER_INC("proxy.denied");
    return Status::InvalidArgument("principal lacks delete grant for key");
  }
  OBS_COUNTER_INC("proxy.allowed");
  return client_.Delete(key);
}

Result<std::vector<std::pair<uint64_t, std::string>>> AccessProxy::GetRange(
    std::string_view principal, uint64_t low, uint64_t high) {
  OBS_SPAN("proxy.range");
  MC_ASSIGN_OR_RETURN(auto rows, client_.GetRange(low, high));
  // Filter to the principal's readable keys — packs may contain neighbours
  // the principal is not entitled to see.
  const size_t fetched = rows.size();
  rows.erase(std::remove_if(rows.begin(), rows.end(),
                            [&](const auto& kv) {
                              return !Allowed(principal, kv.first, Permission::kRead);
                            }),
             rows.end());
  OBS_COUNTER_ADD("proxy.range.filtered", fetched - rows.size());
  return rows;
}

}  // namespace minicrypt
