#include "src/core/key_codec.h"

#include "src/common/coding.h"

namespace minicrypt {

std::string PartitionForKey(std::string_view encoded_key, int hash_partitions) {
  const std::string digest = Sha256(encoded_key);
  // Interpret the first 8 digest bytes as an integer for the modulus.
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<unsigned char>(digest[static_cast<size_t>(i)]);
  }
  return PartitionLabel(static_cast<int>(v % static_cast<uint64_t>(hash_partitions)));
}

std::string PartitionLabel(int partition) { return "p" + std::to_string(partition); }

PackIdCipher::PackIdCipher(const MiniCryptOptions& options, const SymmetricKey& key)
    : prf_key_(key.Derive("packid:" + options.table)),
      bucket_width_(options.packid_bucket_width) {}

std::string PackIdCipher::EncryptBucket(uint64_t bucket) const {
  return HmacSha256(prf_key_, EncodeKey64(bucket));
}

}  // namespace minicrypt
