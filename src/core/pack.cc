#include "src/core/pack.h"

#include <algorithm>

#include "src/common/coding.h"

namespace minicrypt {

Result<Pack> Pack::FromSorted(std::vector<Entry> entries) {
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i - 1].key >= entries[i].key) {
      return Status::InvalidArgument("pack entries not sorted/unique");
    }
  }
  Pack p;
  p.entries_ = std::move(entries);
  return p;
}

std::string Pack::Serialize() const {
  std::string out;
  PutVarint64(&out, entries_.size());
  for (const auto& e : entries_) {
    PutLengthPrefixed(&out, e.key);
    PutLengthPrefixed(&out, e.value);
  }
  return out;
}

Result<Pack> Pack::Deserialize(std::string_view bytes) {
  std::string_view in = bytes;
  MC_ASSIGN_OR_RETURN(uint64_t n, GetVarint64(&in));
  if (n > (1u << 24)) {
    return Status::Corruption("pack declares absurd entry count");
  }
  Pack p;
  p.entries_.reserve(n);
  std::string_view prev;
  for (uint64_t i = 0; i < n; ++i) {
    MC_ASSIGN_OR_RETURN(std::string_view key, GetLengthPrefixed(&in));
    MC_ASSIGN_OR_RETURN(std::string_view value, GetLengthPrefixed(&in));
    if (i > 0 && prev >= key) {
      return Status::Corruption("pack entries out of order");
    }
    prev = key;
    p.entries_.push_back(Entry{std::string(key), std::string(value)});
  }
  if (!in.empty()) {
    return Status::Corruption("trailing bytes after pack entries");
  }
  return p;
}

size_t Pack::LowerBound(std::string_view key) const {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), key,
                             [](const Entry& e, std::string_view k) { return e.key < k; });
  return static_cast<size_t>(it - entries_.begin());
}

std::optional<std::string_view> Pack::Find(std::string_view key) const {
  const size_t i = LowerBound(key);
  if (i < entries_.size() && entries_[i].key == key) {
    return std::string_view(entries_[i].value);
  }
  return std::nullopt;
}

std::optional<std::string_view> Pack::MinKey() const {
  if (entries_.empty()) {
    return std::nullopt;
  }
  return std::string_view(entries_.front().key);
}

bool Pack::Upsert(std::string_view key, std::string_view value) {
  const size_t i = LowerBound(key);
  if (i < entries_.size() && entries_[i].key == key) {
    entries_[i].value = std::string(value);
    return false;
  }
  entries_.insert(entries_.begin() + static_cast<ptrdiff_t>(i),
                  Entry{std::string(key), std::string(value)});
  return true;
}

bool Pack::Erase(std::string_view key) {
  const size_t i = LowerBound(key);
  if (i < entries_.size() && entries_[i].key == key) {
    entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
    return true;
  }
  return false;
}

Result<std::pair<Pack, Pack>> Pack::SplitDeterministic() const {
  if (entries_.size() < 2) {
    return Status::InvalidArgument("cannot split a pack with fewer than 2 keys");
  }
  const size_t left_count = (entries_.size() + 1) / 2;  // ceil(n/2)
  Pack left;
  Pack right;
  left.entries_.assign(entries_.begin(), entries_.begin() + static_cast<ptrdiff_t>(left_count));
  right.entries_.assign(entries_.begin() + static_cast<ptrdiff_t>(left_count), entries_.end());
  return std::make_pair(std::move(left), std::move(right));
}

}  // namespace minicrypt
