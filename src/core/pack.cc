#include "src/core/pack.h"

#include <algorithm>
#include <cstring>

#include "src/common/coding.h"

namespace minicrypt {

namespace {
constexpr size_t kMinArenaBlock = 4096;
}  // namespace

std::string_view Pack::Arena::Copy(std::string_view s) {
  if (s.empty()) {
    return {};
  }
  if (s.size() > remaining_) {
    Reserve(std::max(s.size(), kMinArenaBlock));
  }
  char* dst = cur_;
  std::memcpy(dst, s.data(), s.size());
  cur_ += s.size();
  remaining_ -= s.size();
  return std::string_view(dst, s.size());
}

void Pack::Arena::Reserve(size_t n) {
  if (n == 0 || n <= remaining_) {
    return;
  }
  // Any tail of the previous block is abandoned; callers reserve up front.
  blocks_.push_back(std::make_unique<char[]>(n));
  cur_ = blocks_.back().get();
  remaining_ = n;
  total_ += n;
}

std::string_view Pack::Arena::Adopt(std::string&& s) {
  adopted_.push_back(std::make_unique<std::string>(std::move(s)));
  total_ += adopted_.back()->size();
  return std::string_view(*adopted_.back());
}

namespace {

template <typename EntryRange>
size_t PayloadBytes(const EntryRange& entries) {
  size_t n = 0;
  for (const auto& e : entries) {
    n += e.key.size() + e.value.size();
  }
  return n;
}

}  // namespace

Pack::Pack(const Pack& other) {
  arena_.Reserve(PayloadBytes(other.entries_));
  entries_.reserve(other.entries_.size());
  for (const EntryView& e : other.entries_) {
    entries_.push_back(EntryView{arena_.Copy(e.key), arena_.Copy(e.value)});
  }
}

Pack& Pack::operator=(const Pack& other) {
  if (this != &other) {
    Pack copy(other);
    *this = std::move(copy);
  }
  return *this;
}

Result<Pack> Pack::FromSorted(std::vector<Entry> entries) {
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i - 1].key >= entries[i].key) {
      return Status::InvalidArgument("pack entries not sorted/unique");
    }
  }
  Pack p;
  p.arena_.Reserve(PayloadBytes(entries));
  p.entries_.reserve(entries.size());
  for (const Entry& e : entries) {
    p.entries_.push_back(EntryView{p.arena_.Copy(e.key), p.arena_.Copy(e.value)});
  }
  return p;
}

std::string Pack::Serialize() const {
  std::string out;
  PutVarint64(&out, entries_.size());
  for (const auto& e : entries_) {
    PutLengthPrefixed(&out, e.key);
    PutLengthPrefixed(&out, e.value);
  }
  return out;
}

namespace {

// Shared decode: slices `bytes` into (key, value) views. The caller decides
// whether those views point at an adopted buffer (zero-copy) or get copied
// into the arena.
Result<std::vector<Pack::EntryView>> ParseEntries(std::string_view bytes) {
  std::string_view in = bytes;
  MC_ASSIGN_OR_RETURN(uint64_t n, GetVarint64(&in));
  if (n > (1u << 24)) {
    return Status::Corruption("pack declares absurd entry count");
  }
  std::vector<Pack::EntryView> entries;
  entries.reserve(n);
  std::string_view prev;
  for (uint64_t i = 0; i < n; ++i) {
    MC_ASSIGN_OR_RETURN(std::string_view key, GetLengthPrefixed(&in));
    MC_ASSIGN_OR_RETURN(std::string_view value, GetLengthPrefixed(&in));
    if (i > 0 && prev >= key) {
      return Status::Corruption("pack entries out of order");
    }
    prev = key;
    entries.push_back(Pack::EntryView{key, value});
  }
  if (!in.empty()) {
    return Status::Corruption("trailing bytes after pack entries");
  }
  return entries;
}

}  // namespace

Result<Pack> Pack::Deserialize(std::string_view bytes) {
  MC_ASSIGN_OR_RETURN(std::vector<EntryView> parsed, ParseEntries(bytes));
  Pack p;
  p.arena_.Reserve(PayloadBytes(parsed));
  p.entries_.reserve(parsed.size());
  for (const EntryView& e : parsed) {
    p.entries_.push_back(EntryView{p.arena_.Copy(e.key), p.arena_.Copy(e.value)});
  }
  return p;
}

Result<Pack> Pack::FromSerialized(std::string&& bytes) {
  Pack p;
  const std::string_view stable = p.arena_.Adopt(std::move(bytes));
  // Parse after adoption: the views below point into the arena-owned buffer,
  // never into a caller temporary.
  MC_ASSIGN_OR_RETURN(p.entries_, ParseEntries(stable));
  return p;
}

size_t Pack::LowerBound(std::string_view key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const EntryView& e, std::string_view k) { return e.key < k; });
  return static_cast<size_t>(it - entries_.begin());
}

std::optional<std::string_view> Pack::Find(std::string_view key) const {
  const size_t i = LowerBound(key);
  if (i < entries_.size() && entries_[i].key == key) {
    return entries_[i].value;
  }
  return std::nullopt;
}

std::optional<std::string_view> Pack::MinKey() const {
  if (entries_.empty()) {
    return std::nullopt;
  }
  return entries_.front().key;
}

bool Pack::Upsert(std::string_view key, std::string_view value) {
  const size_t i = LowerBound(key);
  if (i < entries_.size() && entries_[i].key == key) {
    entries_[i].value = arena_.Copy(value);
    return false;
  }
  entries_.insert(entries_.begin() + static_cast<ptrdiff_t>(i),
                  EntryView{arena_.Copy(key), arena_.Copy(value)});
  return true;
}

bool Pack::Erase(std::string_view key) {
  const size_t i = LowerBound(key);
  if (i < entries_.size() && entries_[i].key == key) {
    entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
    return true;
  }
  return false;
}

Result<std::pair<Pack, Pack>> Pack::SplitDeterministic() const {
  if (entries_.size() < 2) {
    return Status::InvalidArgument("cannot split a pack with fewer than 2 keys");
  }
  const size_t left_count = (entries_.size() + 1) / 2;  // ceil(n/2)
  Pack left;
  Pack right;
  left.entries_.reserve(left_count);
  right.entries_.reserve(entries_.size() - left_count);
  size_t left_bytes = 0;
  for (size_t i = 0; i < left_count; ++i) {
    left_bytes += entries_[i].key.size() + entries_[i].value.size();
  }
  left.arena_.Reserve(left_bytes);
  right.arena_.Reserve(PayloadBytes(entries_) - left_bytes);
  for (size_t i = 0; i < left_count; ++i) {
    left.entries_.push_back(EntryView{left.arena_.Copy(entries_[i].key),
                                      left.arena_.Copy(entries_[i].value)});
  }
  for (size_t i = left_count; i < entries_.size(); ++i) {
    right.entries_.push_back(EntryView{right.arena_.Copy(entries_[i].key),
                                       right.arena_.Copy(entries_[i].value)});
  }
  return std::make_pair(std::move(left), std::move(right));
}

}  // namespace minicrypt
