// GENERIC-mode MiniCrypt client (paper §4-§5): gets via the floor query on
// packIDs, range gets, puts/deletes through the read-modify-write-if loop,
// and the deterministic split protocol.
//
// Every client holds the customer's symmetric key; the server (the Cluster)
// only ever sees sealed envelopes and their hashes.

#ifndef MINICRYPT_SRC_CORE_GENERIC_CLIENT_H_
#define MINICRYPT_SRC_CORE_GENERIC_CLIENT_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/backoff.h"
#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/core/key_codec.h"
#include "src/core/options.h"
#include "src/core/pack.h"
#include "src/core/pack_cache.h"
#include "src/core/pack_crypter.h"
#include "src/crypto/crypto.h"
#include "src/crypto/keyring.h"
#include "src/crypto/ope.h"
#include "src/kvstore/cluster.h"

namespace minicrypt {

// Secondary-index types live in src/index (which links against this
// library); GenericClient only holds a handle, so forward declarations keep
// the layering acyclic. The index entry points below are implemented in
// src/index/indexed_ops.cc — using them requires linking mc_index.
class SecondaryIndex;
struct SecondaryIndexOptions;

// Per-client counters, exposed for tests and benches. CreateTable() resets
// them: it marks the start of a fresh client session over the table, so
// counters always describe work since the table was (re)created.
struct GenericClientStats {
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> puts{0};
  std::atomic<uint64_t> deletes{0};
  // Extra attempts of the mutate loop beyond the first, counted identically
  // for contention (ConditionFailed / lost insert race / split-first) and
  // transient-unavailability retries. One put that succeeds on attempt N
  // contributes exactly N-1 here, whatever forced the loop.
  std::atomic<uint64_t> put_retries{0};
  std::atomic<uint64_t> splits{0};
  std::atomic<uint64_t> range_queries{0};
  std::atomic<uint64_t> multigets{0};

  void Reset() {
    gets.store(0, std::memory_order_relaxed);
    puts.store(0, std::memory_order_relaxed);
    deletes.store(0, std::memory_order_relaxed);
    put_retries.store(0, std::memory_order_relaxed);
    splits.store(0, std::memory_order_relaxed);
    range_queries.store(0, std::memory_order_relaxed);
    multigets.store(0, std::memory_order_relaxed);
  }
};

// Durable record of an in-flight key rotation (docs/KEY_ROTATION.md). The
// rotator persists it in a reserved partition of the data table, so a crashed
// rotation resumes from its last durable stage on the next RotateKeys call.
struct KeyRotationState {
  static constexpr int kStageIdle = 0;       // no rotation in flight
  static constexpr int kStageAnnounced = 1;  // target epoch durable, not yet swept
  static constexpr int kStageRepack = 2;     // walking partitions at `cursor`
  static constexpr int kStageVerify = 3;     // drain + clean-sweep before retire

  uint64_t target = 0;         // epoch being rotated to (0 = never rotated)
  int stage = kStageIdle;
  int cursor = 0;              // next partition index of the repack walk
  uint64_t retired_below = 0;  // durable retirement floor
};

class GenericClient {
 public:
  // `cluster` outlives the client. All clients of one customer must share the
  // same keyring (and options) — that is what keeps their sealing epochs and
  // retirement floors in lockstep during rotation. When
  // options.cache_capacity_bytes > 0 the client builds a private
  // decrypted-pack cache.
  GenericClient(Cluster* cluster, const MiniCryptOptions& options,
                std::shared_ptr<Keyring> keyring);

  // Same, but sharing a pack cache with other clients of the same customer
  // (pass nullptr to force caching off regardless of the options).
  GenericClient(Cluster* cluster, const MiniCryptOptions& options,
                std::shared_ptr<Keyring> keyring, std::shared_ptr<PackCache> cache);

  // Legacy single-key conveniences: wrap the key in a fresh epoch-0 keyring
  // private to this client. Fine for anything that never rotates.
  GenericClient(Cluster* cluster, const MiniCryptOptions& options, const SymmetricKey& key);
  GenericClient(Cluster* cluster, const MiniCryptOptions& options, const SymmetricKey& key,
                std::shared_ptr<PackCache> cache);

  // Creates the backing table (idempotent; first client calls this).
  Status CreateTable();

  // --- Paper §2.3 API -----------------------------------------------------------

  // get(key): fetch pack by floor query, decrypt, scan (Figure 3).
  Result<std::string> Get(uint64_t key);

  // get(low, high): range query over packIDs (Figure 4). Inclusive bounds.
  Result<std::vector<std::pair<uint64_t, std::string>>> GetRange(uint64_t low, uint64_t high);

  // Batched get: one result per input key, aligned with `keys` (duplicates
  // allowed; a missing key yields NotFound in its slot). Keys are grouped by
  // their owning pack so one fetch + decrypt serves every key of the group —
  // with the pack cache on, a whole group can be served without touching the
  // envelope at all.
  std::vector<Result<std::string>> MultiGet(const std::vector<uint64_t>& keys);

  // put(key, val): read-modify-write-if loop with split-on-oversize
  // (Figures 5 and 6).
  Status Put(uint64_t key, std::string_view value);

  // delete(key): like put, but removes the key; packs are never removed and
  // their IDs never change (paper §5.3).
  Status Delete(uint64_t key);

  // --- Secondary index (src/index; implemented in indexed_ops.cc) ---------------

  // Creates (or attaches to) an encrypted secondary index over this table's
  // row values and its backing table. After this call every Put maintains
  // the index *before* writing the primary row, so the index is always a
  // superset of live rows (stale entries are filtered by GetRangeByValue,
  // never trusted). One index per client handle.
  Status CreateIndex(const SecondaryIndexOptions& iopts);

  // Rows whose indexed attribute lies in [lo, hi] (inclusive), sorted by
  // primary key. Point predicates are lo == hi. Every index candidate is
  // re-read from the primary table and its attribute re-verified, so the
  // result is exact even while the index holds stale or duplicate entries.
  Result<std::vector<std::pair<uint64_t, std::string>>> GetRangeByValue(uint64_t lo, uint64_t hi);

  // The attached index, or nullptr before CreateIndex.
  const std::shared_ptr<SecondaryIndex>& index() const { return index_; }

  // --- Bulk load -----------------------------------------------------------------

  // Packs a sorted stream of rows per partition and inserts whole packs;
  // used to preload benches (and by APPEND-mode mergers via the same codec
  // path). Rows need not be globally sorted.
  Status BulkLoad(const std::vector<std::pair<uint64_t, std::string>>& rows);

  // BulkLoad plus index maintenance: index entries are written first (as
  // segments / leaves wholesale), mirroring the index-first ordering of Put.
  // Falls back to plain BulkLoad when no index is attached. Implemented in
  // src/index/indexed_ops.cc.
  Status BulkLoadIndexed(const std::vector<std::pair<uint64_t, std::string>>& rows);

  // --- Online key rotation (docs/KEY_ROTATION.md) --------------------------------

  // Runs (or resumes) one epoch rotation to completion:
  //   announce-epoch -> re-pack every partition -> verify (drain + clean
  //   sweep) -> retire the old epochs.
  // Crash-resumable: every stage edge is persisted (a durable cursor walks
  // the partitions), so calling RotateKeys again after any failure resumes
  // idempotently from the last durable stage — including a rotation started
  // by a different (crashed) client of the same keyring. Re-seals go through
  // the LWT envelope-hash gate, so concurrent foreground writers are never
  // clobbered; contention and Unavailable replicas consume bounded retries
  // and then *pause* the rotation with Unavailable (foreground traffic wins).
  // A fresh call with nothing in flight rotates to current_epoch() + 1.
  Status RotateKeys();

  // The persisted rotation record (all-defaults when none exists yet).
  Result<KeyRotationState> RotationState();

  // The keyring this client seals with (shared across the customer's clients).
  const std::shared_ptr<Keyring>& keyring() const { return keyring_; }

  // --- Introspection ---------------------------------------------------------------

  const GenericClientStats& stats() const { return stats_; }
  const MiniCryptOptions& options() const { return options_; }

  // The decrypted-pack cache this client consults; nullptr when caching is
  // off. Share it across clients by passing it to their constructors.
  const std::shared_ptr<PackCache>& pack_cache() const { return cache_; }

  // Test hooks: fail-points that abort a split at a chosen step, modelling a
  // client crash (paper §5.2's failure analysis).
  enum class SplitFailPoint { kNone, kAfterRightInsert };
  void set_split_fail_point(SplitFailPoint p) { split_fail_point_ = p; }

 private:
  friend class PackSizeTuner;

  struct FetchedPack {
    std::string pack_id;  // stored clustering key (may be PRF output)
    std::shared_ptr<const Pack> pack;
    std::string hash;       // envelope hash (update-if token)
    bool ttl_fresh = false;  // served from the cache without a server probe
  };

  // Fetches the pack that should contain `encoded_key` within `partition`.
  // NotFound when the partition holds no pack at or below the key.
  Result<FetchedPack> FetchPackFor(std::string_view partition, std::string_view encoded_key);

  // Cache-aware variant: serves from the pack cache after a version-only
  // floor probe (or, with `allow_ttl`, straight from a TTL-fresh entry), and
  // falls back to FetchPackFor + cache fill. Identical semantics to
  // FetchPackFor when caching is off or packIDs are PRF-encrypted.
  Result<FetchedPack> FetchPackCached(std::string_view partition, std::string_view encoded_key,
                                      bool allow_ttl);

  // FetchPackCached wrapped in the bounded Unavailable-retry loop shared by
  // the read paths.
  Result<FetchedPack> FetchWithRetries(std::string_view partition, std::string_view encoded_key,
                                       bool allow_ttl);

  // Opens an envelope already in hand (range reads), reusing a cached pack
  // when its hash matches and filling the cache otherwise.
  Result<std::shared_ptr<const Pack>> OpenPackCached(std::string_view partition,
                                                     std::string_view pack_id,
                                                     std::string_view envelope,
                                                     std::string_view hash);

  // One write attempt; sets *retry when the caller should loop. `applied`
  // answers "does this pack already reflect my mutation?" — consulted after
  // an ambiguous (Unavailable) LWT outcome: the client re-reads and verifies
  // instead of blind-retrying a conditional write that may have landed.
  // `pack_id` (optional) receives the last pack this attempt touched, for
  // error messages.
  Status TryMutate(uint64_t key, const std::function<void(Pack*)>& mutate,
                   const std::function<bool(const Pack&)>& applied, bool insert_if_new,
                   bool* retry, std::string* pack_id);

  // Shared retry loop of Put/Delete: TryMutate with exponential backoff and
  // a bounded budget; exhaustion returns Aborted (contention) or Unavailable
  // (faults), both naming the key and pack.
  Status MutateWithRetries(uint64_t key, const std::function<void(Pack*)>& mutate,
                           const std::function<bool(const Pack&)>& applied, bool insert_if_new,
                           std::string_view op_name);

  // Sleeps the backoff delay for the given 0-based retry ordinal via the
  // cluster's clock.
  void BackoffBeforeRetry(int attempt);

  // Runs the split protocol of Figure 6 on a fetched pack.
  Status SplitPack(std::string_view partition, const FetchedPack& fetched);

  // --- Rotation internals (see RotateKeys) -----------------------------------

  // Reads / writes the durable rotation record. Persist consults the
  // kRotatePersist fault point first (an injected failure pauses the
  // rotation before the stage transition becomes durable).
  Result<KeyRotationState> LoadRotationState();
  Status PersistRotationState(const KeyRotationState& state);

  // Scans one partition and re-seals every pack whose envelope epoch is
  // below `target`; adds the number of stale packs found to *resealed.
  // Used by both the repack walk and the verify sweeps.
  Status RepackPartition(std::string_view partition, uint64_t target, size_t* resealed);

  // Re-seals one pack under the current (>= target) epoch via the LWT
  // envelope-hash gate, bounded retries. Ok when the pack vanished or is
  // already at/above target.
  Status ResealPack(std::string_view partition, std::string_view pack_id, uint64_t target);

  // Seals and writes a brand-new pack under its own ID (INSERT IF NOT EXISTS).
  Status InsertNewPack(std::string_view partition, std::string_view pack_id, const Pack& pack);

  std::string StoredPackId(std::string_view partition, const Pack& pack,
                           std::string_view fallback_id) const;

  // Maps an order-preserving-encoded plaintext key into the packID space the
  // server indexes: identity normally, the OPE image in ope_pack_ids mode.
  std::string StoredKeyFor(std::string_view encoded_key) const;

  // Cache bookkeeping after a mutation of `pack_id`: Put() the post-image on
  // an acked LWT, Invalidate() on a lost race or ambiguous outcome.
  void CacheAfterWrite(std::string_view partition, std::string_view pack_id, const Pack& pack,
                       const std::string& hash);
  void CacheInvalidate(std::string_view partition, std::string_view pack_id);

  Cluster* cluster_;
  MiniCryptOptions options_;
  // Epoch-versioned key material, shared across the customer's clients. The
  // companions below (packID PRF, OPE, secondary-index subkeys) derive from
  // its master key — they encrypt identifiers, not data at rest, and do not
  // rotate with packs (docs/KEY_ROTATION.md discusses the trade-off).
  std::shared_ptr<Keyring> keyring_;
  // The master key, retained for lazily constructed companions (the
  // secondary index derives its own subkeys from it).
  SymmetricKey key_;
  PackCrypter crypter_;
  std::optional<PackIdCipher> packid_cipher_;
  std::optional<OpeCipher> ope_;
  std::shared_ptr<PackCache> cache_;  // nullptr = caching off
  // Set by CreateIndex: Put calls the hook (index-first) before the primary
  // RMW loop. The hook indirection keeps generic_client.cc free of index
  // types, so mc_core does not link mc_index.
  std::shared_ptr<SecondaryIndex> index_;
  std::function<Status(uint64_t key, std::string_view value)> index_add_hook_;
  GenericClientStats stats_;
  Clock* clock_;
  // One client can serve many threads (benches do); the jitter RNG is the
  // only mutable shared state on the retry path, so it gets its own lock.
  std::mutex backoff_mu_;
  Backoff backoff_;
  SplitFailPoint split_fail_point_ = SplitFailPoint::kNone;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_CORE_GENERIC_CLIENT_H_
