#include "src/core/pack_cache.h"

#include <algorithm>
#include <functional>

#include "src/common/coding.h"
#include "src/obs/metrics.h"

namespace minicrypt {

namespace {

// Rough in-memory footprint of one cached pack: entry bytes plus per-entry and
// per-slot bookkeeping. Exactness does not matter — it only has to make the
// byte capacity meaningful.
size_t ApproxPackBytes(const Pack& pack, size_t key_bytes, size_t hash_bytes) {
  // Entries are views into the pack's arena, so the arena plus the view
  // index is the whole footprint.
  const size_t bytes = sizeof(Pack) + 64 +  // slot + list node overhead
                       pack.ArenaBytes() +
                       pack.entries().size() * sizeof(Pack::EntryView);
  return bytes + key_bytes + hash_bytes;
}

}  // namespace

PackCache::PackCache(size_t capacity_bytes, uint64_t ttl_micros, Clock* clock, int shards)
    : capacity_(capacity_bytes), ttl_micros_(ttl_micros), clock_(clock) {
  const int n = std::max(1, shards);
  shards_.reserve(n);
  for (int i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<PackCache> PackCache::FromOptions(size_t capacity_bytes, uint64_t ttl_micros,
                                                  Clock* clock) {
  if (capacity_bytes == 0) {
    return nullptr;
  }
  return std::make_shared<PackCache>(capacity_bytes, ttl_micros, clock);
}

std::string PackCache::ScopePrefix(std::string_view table, std::string_view partition) {
  std::string out;
  PutVarint64(&out, table.size());
  out.append(table);
  PutVarint64(&out, partition.size());
  out.append(partition);
  return out;
}

PackCache::Shard& PackCache::ShardForScope(std::string_view scope) {
  const size_t h = std::hash<std::string_view>{}(scope);
  return *shards_[h % shards_.size()];
}

bool PackCache::FreshLocked(const CachedPack& cached) const {
  if (ttl_micros_ == 0) {
    return false;
  }
  const uint64_t now = clock_->NowMicros();
  return now >= cached.validated_at_micros && now - cached.validated_at_micros <= ttl_micros_;
}

void PackCache::TouchLocked(Shard& shard, Slot& slot, const std::string& key) {
  shard.lru.erase(slot.lru_it);
  shard.lru.push_front(key);
  slot.lru_it = shard.lru.begin();
}

void PackCache::EvictLocked(Shard& shard) {
  const size_t per_shard = capacity_ / shards_.size();
  while (shard.bytes > per_shard && !shard.lru.empty()) {
    const std::string victim = shard.lru.back();
    shard.lru.pop_back();
    auto it = shard.map.find(victim);
    if (it != shard.map.end()) {
      shard.bytes -= std::min(shard.bytes, it->second.bytes);
      shard.map.erase(it);
      shard.evictions++;
      OBS_COUNTER_INC("client.cache.evictions");
    }
  }
}

std::optional<std::pair<std::string, PackCache::CachedPack>> PackCache::Floor(
    std::string_view table, std::string_view partition, std::string_view stored_key,
    bool only_fresh) {
  if (!enabled()) {
    return std::nullopt;
  }
  const std::string scope = ScopePrefix(table, partition);
  std::string probe = scope;
  probe.append(stored_key);
  Shard& shard = ShardForScope(scope);
  std::lock_guard<std::mutex> lock(shard.mu);
  // Greatest key <= scope||stored_key that still lies inside the scope.
  auto it = shard.map.upper_bound(probe);
  if (it == shard.map.begin()) {
    return std::nullopt;
  }
  --it;
  if (it->first.size() < scope.size() || it->first.compare(0, scope.size(), scope) != 0) {
    return std::nullopt;
  }
  if (only_fresh && !FreshLocked(it->second.cached)) {
    return std::nullopt;
  }
  TouchLocked(shard, it->second, it->first);
  return std::make_pair(it->first.substr(scope.size()), it->second.cached);
}

std::shared_ptr<const Pack> PackCache::ValidateAndGet(std::string_view table,
                                                      std::string_view partition,
                                                      std::string_view pack_id,
                                                      std::string_view expected_hash) {
  if (!enabled()) {
    return nullptr;
  }
  const std::string scope = ScopePrefix(table, partition);
  std::string key = scope;
  key.append(pack_id);
  Shard& shard = ShardForScope(scope);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    shard.misses++;
    OBS_COUNTER_INC("client.cache.misses");
    return nullptr;
  }
  if (it->second.cached.hash != expected_hash) {
    // The server holds a newer version of this pack: drop ours.
    shard.invalidations++;
    shard.misses++;
    OBS_COUNTER_INC("client.cache.invalidations");
    OBS_COUNTER_INC("client.cache.misses");
    shard.bytes -= std::min(shard.bytes, it->second.bytes);
    shard.lru.erase(it->second.lru_it);
    shard.map.erase(it);
    return nullptr;
  }
  it->second.cached.validated_at_micros = clock_->NowMicros();
  TouchLocked(shard, it->second, it->first);
  shard.hits++;
  shard.revalidations++;
  OBS_COUNTER_INC("client.cache.hits");
  OBS_COUNTER_INC("client.cache.revalidations");
  return it->second.cached.pack;
}

void PackCache::RecordTtlServe() {
  if (!enabled()) {
    return;
  }
  Shard& shard = *shards_[0];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.hits++;
  shard.ttl_hits++;
  OBS_COUNTER_INC("client.cache.hits");
  OBS_COUNTER_INC("client.cache.ttl_hits");
}

void PackCache::Put(std::string_view table, std::string_view partition, std::string_view pack_id,
                    std::shared_ptr<const Pack> pack, std::string hash) {
  if (!enabled() || pack == nullptr) {
    return;
  }
  const std::string scope = ScopePrefix(table, partition);
  std::string key = scope;
  key.append(pack_id);
  const size_t bytes = ApproxPackBytes(*pack, key.size(), hash.size());
  Shard& shard = ShardForScope(scope);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.bytes -= std::min(shard.bytes, it->second.bytes);
    it->second.cached = CachedPack{std::move(pack), std::move(hash), clock_->NowMicros()};
    it->second.bytes = bytes;
    shard.bytes += bytes;
    TouchLocked(shard, it->second, it->first);
  } else {
    shard.lru.push_front(key);
    Slot slot;
    slot.cached = CachedPack{std::move(pack), std::move(hash), clock_->NowMicros()};
    slot.bytes = bytes;
    slot.lru_it = shard.lru.begin();
    shard.map.emplace(std::move(key), std::move(slot));
    shard.bytes += bytes;
  }
  EvictLocked(shard);
}

void PackCache::Invalidate(std::string_view table, std::string_view partition,
                           std::string_view pack_id) {
  if (!enabled()) {
    return;
  }
  const std::string scope = ScopePrefix(table, partition);
  std::string key = scope;
  key.append(pack_id);
  Shard& shard = ShardForScope(scope);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    return;
  }
  shard.bytes -= std::min(shard.bytes, it->second.bytes);
  shard.lru.erase(it->second.lru_it);
  shard.map.erase(it);
  shard.invalidations++;
  OBS_COUNTER_INC("client.cache.invalidations");
}

PackCacheStats PackCache::Stats() const {
  PackCacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.ttl_hits += shard->ttl_hits;
    out.misses += shard->misses;
    out.revalidations += shard->revalidations;
    out.invalidations += shard->invalidations;
    out.evictions += shard->evictions;
    out.bytes_used += shard->bytes;
  }
  return out;
}

}  // namespace minicrypt
