#include "src/core/options.h"

#include "src/compress/compressor.h"

namespace minicrypt {

Status MiniCryptOptions::Validate() const {
  if (table.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  if (pack_rows == 0) {
    return Status::InvalidArgument("pack_rows must be >= 1");
  }
  if (hash_partitions <= 0) {
    return Status::InvalidArgument("hash_partitions must be >= 1");
  }
  if (FindCompressor(codec) == nullptr) {
    return Status::InvalidArgument("unknown codec: " + codec);
  }
  if (EffectiveMaxKeys() <= pack_rows / 2) {
    return Status::InvalidArgument("max_keys too small relative to pack_rows");
  }
  if (epoch_micros <= t_delta_micros + t_drift_micros) {
    // Paper §6.1: EPOCH > T_delta + T_drift, otherwise the merge-safety
    // argument (Figure 8) does not hold.
    return Status::InvalidArgument("epoch_micros must exceed t_delta + t_drift");
  }
  if (retry_backoff_base_micros > retry_backoff_max_micros) {
    return Status::InvalidArgument("retry_backoff_base_micros exceeds retry_backoff_max_micros");
  }
  if (encrypt_pack_ids && packid_bucket_width == 0) {
    return Status::InvalidArgument("packid_bucket_width must be >= 1");
  }
  if (cache_ttl_micros > 0 && cache_capacity_bytes == 0) {
    return Status::InvalidArgument("cache_ttl_micros requires cache_capacity_bytes > 0");
  }
  if (encrypt_pack_ids && ope_pack_ids) {
    return Status::InvalidArgument("choose one of encrypt_pack_ids / ope_pack_ids");
  }
  return Status::Ok();
}

}  // namespace minicrypt
