// The two comparison clients of the paper's evaluation (§8):
//
//  - EncryptedBaselineClient: "a typical encrypted system that gives
//    confidentiality by encrypting each row individually", with the same
//    per-row compression advantage the paper grants it (single-row zlib,
//    ratio ~1.6 on Conviva-like data). Blind writes; no packs.
//
//  - VanillaClient: plaintext values, no client-side crypto. Its table runs
//    with server-side at-rest compression (as Cassandra does), so it fits
//    more than raw in memory but must ship uncompressed bytes to clients.

#ifndef MINICRYPT_SRC_CORE_BASELINE_CLIENT_H_
#define MINICRYPT_SRC_CORE_BASELINE_CLIENT_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/core/key_codec.h"
#include "src/core/options.h"
#include "src/core/pack_crypter.h"
#include "src/crypto/crypto.h"
#include "src/kvstore/cluster.h"

namespace minicrypt {

// Shared read/write/scan surface so the bench driver can swap systems.
class KvFacade {
 public:
  virtual ~KvFacade() = default;
  virtual Status CreateTable() = 0;
  virtual Result<std::string> Get(uint64_t key) = 0;
  virtual Status Put(uint64_t key, std::string_view value) = 0;
  virtual Result<std::vector<std::pair<uint64_t, std::string>>> GetRange(uint64_t low,
                                                                         uint64_t high) = 0;
  virtual Status BulkLoad(const std::vector<std::pair<uint64_t, std::string>>& rows) = 0;
};

class EncryptedBaselineClient : public KvFacade {
 public:
  EncryptedBaselineClient(Cluster* cluster, const MiniCryptOptions& options,
                          const SymmetricKey& key);

  Status CreateTable() override;
  Result<std::string> Get(uint64_t key) override;
  Status Put(uint64_t key, std::string_view value) override;
  Result<std::vector<std::pair<uint64_t, std::string>>> GetRange(uint64_t low,
                                                                 uint64_t high) override;
  Status BulkLoad(const std::vector<std::pair<uint64_t, std::string>>& rows) override;

 private:
  Cluster* cluster_;
  MiniCryptOptions options_;
  PackCrypter crypter_;
};

class VanillaClient : public KvFacade {
 public:
  VanillaClient(Cluster* cluster, const MiniCryptOptions& options);

  Status CreateTable() override;
  Result<std::string> Get(uint64_t key) override;
  Status Put(uint64_t key, std::string_view value) override;
  Result<std::vector<std::pair<uint64_t, std::string>>> GetRange(uint64_t low,
                                                                 uint64_t high) override;
  Status BulkLoad(const std::vector<std::pair<uint64_t, std::string>>& rows) override;

 private:
  Cluster* cluster_;
  MiniCryptOptions options_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_CORE_BASELINE_CLIENT_H_
