// MiniCrypt client configuration.

#ifndef MINICRYPT_SRC_CORE_OPTIONS_H_
#define MINICRYPT_SRC_CORE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/crypto/padding.h"

namespace minicrypt {

struct MiniCryptOptions {
  // --- Shared ---------------------------------------------------------------

  std::string table = "mc_data";

  // Target keys per pack (the paper's n; its evaluation uses 50, §8).
  size_t pack_rows = 50;

  // Split threshold (paper §5.2: "can be set to 1.5 * n"). 0 = derive.
  size_t max_keys = 0;

  // Hash partitions the key space is spread over (paper §7: default 8).
  int hash_partitions = 8;

  // Compression codec name (paper §3 chooses zlib).
  std::string codec = "zlib";

  // Pack size padding tiers (paper §2.5). Default: none.
  PaddingTiers padding;

  // GENERIC mode only, incompatible with range queries (paper §2.5):
  // deterministically encrypt packIDs with a per-table PRF. Lookup then uses
  // static key buckets of `packid_bucket_width` consecutive keys, because an
  // order-based floor query is impossible on PRF output. Splits are disabled
  // in this mode.
  bool encrypt_pack_ids = false;
  uint64_t packid_bucket_width = 50;

  // GENERIC mode: encrypt packIDs with order-preserving encryption instead
  // of the PRF. Keeps floor lookups, splits, and range queries working on
  // encrypted packIDs, at the §2.5-stated cost of revealing their order to
  // the server. Mutually exclusive with encrypt_pack_ids.
  bool ope_pack_ids = false;

  // Client-side decrypted-pack cache (src/core/pack_cache.h). 0 disables it.
  // Cached packs are served only after a version-only floor probe confirms
  // the stored envelope hash, so the default (ttl 0) is fully coherent.
  size_t cache_capacity_bytes = 0;

  // With a nonzero TTL, an entry validated within the last `cache_ttl_micros`
  // may be served without probing the server at all — zero round trips, but
  // reads may then be up to one TTL stale. 0 = probe on every read.
  uint64_t cache_ttl_micros = 0;

  // Bound on put retries under contention before giving up with Aborted.
  int max_put_retries = 64;

  // Exponential backoff between retries (contention and Unavailable alike).
  // Sleeps route through the cluster's Clock, so tests on a SimulatedClock
  // never wall-block. base == 0 disables backoff (the pre-hardening tight
  // loop). Jitter is seeded: 0 picks a fixed default so runs reproduce; give
  // each client of a multi-client test a distinct seed.
  uint64_t retry_backoff_base_micros = 100;
  uint64_t retry_backoff_max_micros = 20'000;
  uint64_t retry_jitter_seed = 0;

  // --- Key rotation (GENERIC mode; docs/KEY_ROTATION.md) ----------------------

  // Wall-clock bound on RotateKeys waiting for in-flight old-epoch seals to
  // drain before the final verify + retire (Keyring::WaitForDrainBelow). An
  // expired wait pauses the rotation with Unavailable; calling RotateKeys
  // again resumes from the persisted stage.
  uint64_t rotation_drain_timeout_millis = 30'000;

  // Bounded re-seal attempts per pack (LWT races and Unavailable replicas
  // both consume attempts) before the rotation pauses with Unavailable —
  // foreground traffic always wins over rotation.
  int rotation_reseal_attempts = 8;

  // Bounded verify sweeps: each sweep re-seals any pack still below the
  // target epoch, and a sweep that finds none proves the rotation complete.
  int rotation_verify_passes = 8;

  // Figure 10 ablation only: write packs back blindly instead of with
  // update-if. Still pays the extra read, but loses the lost-update
  // protection — the paper measures this variant to justify keeping the
  // lightweight transaction. Never enable outside benchmarks.
  bool blind_pack_writes = false;

  // --- APPEND mode ------------------------------------------------------------

  // Epoch length. Correctness requires epoch_micros > t_delta + t_drift
  // (paper §6.1).
  uint64_t epoch_micros = 2'000'000;
  // Upper bound on key arrival lag (paper's T_delta).
  uint64_t t_delta_micros = 500'000;
  // Max client epoch-sync lag (paper's T_drift; 10 s in their experiments).
  uint64_t t_drift_micros = 200'000;
  // Client heartbeat period and the EM's liveness timeout.
  uint64_t heartbeat_micros = 300'000;
  uint64_t client_timeout_micros = 2'000'000;
  // Merger scan period.
  uint64_t merge_period_micros = 300'000;

  // Derived accessors.
  size_t EffectiveMaxKeys() const {
    return max_keys != 0 ? max_keys : (pack_rows * 3 + 1) / 2;  // ceil(1.5n)
  }

  // Validates invariants (epoch bound, nonzero sizes).
  Status Validate() const;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_CORE_OPTIONS_H_
