// Seals packs for the server and opens them again on the client:
//   serialize -> compress -> pad to tier -> AES-256-GCM encrypt,
// and the SHA-256 hash of the envelope is the token used by update-if
// (paper Figure 5). The server only ever stores (packID, envelope, hash).
// GCM authenticates each envelope, so a tampered pack fails at Open rather
// than deserializing garbage; the AES-NI + PCLMUL kernel is selected at
// runtime (src/common/cpu_features.h).

#ifndef MINICRYPT_SRC_CORE_PACK_CRYPTER_H_
#define MINICRYPT_SRC_CORE_PACK_CRYPTER_H_

#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/compress/compressor.h"
#include "src/core/options.h"
#include "src/core/pack.h"
#include "src/crypto/crypto.h"

namespace minicrypt {

struct SealedPack {
  std::string envelope;  // IV || ciphertext || GCM tag
  std::string hash;      // SHA-256(envelope)
};

class PackCrypter {
 public:
  // `key` is the customer's shared symmetric key; a pack subkey is derived
  // from it so packs and packIDs use independent keys.
  PackCrypter(const MiniCryptOptions& options, const SymmetricKey& key);

  Result<SealedPack> Seal(const Pack& pack) const;
  Result<Pack> Open(std::string_view envelope) const;

  // Seals a single row value (APPEND-mode puts and the encrypted baseline
  // client compress+encrypt one row at a time).
  Result<std::string> SealValue(std::string_view value) const;
  Result<std::string> OpenValue(std::string_view envelope) const;

  const Compressor* codec() const { return codec_; }

 private:
  const Compressor* codec_;
  PaddingTiers padding_;
  SymmetricKey pack_key_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_CORE_PACK_CRYPTER_H_
