// Seals packs for the server and opens them again on the client:
//   serialize -> compress -> pad to tier -> AES-256-GCM encrypt,
// and the SHA-256 hash of the envelope is the token used by update-if
// (paper Figure 5). The server only ever stores (packID, envelope, hash).
// GCM authenticates each envelope, so a tampered pack fails at Open rather
// than deserializing garbage; the AES-NI + PCLMUL kernel is selected at
// runtime (src/common/cpu_features.h).
//
// Envelopes are versioned for online key rotation (docs/KEY_ROTATION.md):
//
//   v2:  "MCE2" || key-epoch (8 bytes, big-endian) || IV || ct || GCM tag
//   v1:  IV || ct || GCM tag                    (pre-rotation; epoch 0)
//
// The epoch header routes Open to the right epoch subkey of the keyring, and
// the same epoch — together with the table name and the caller-supplied
// context (the stored packID) — is bound into the GCM AAD. A v2 envelope
// spliced across tables, packIDs, or epochs therefore fails its tag check,
// and the unauthenticated header cannot lie about which key sealed it.
// Opening an envelope whose epoch has been retired (or never announced)
// fails with a typed KeyUnavailable instead of a misleading MAC failure.

#ifndef MINICRYPT_SRC_CORE_PACK_CRYPTER_H_
#define MINICRYPT_SRC_CORE_PACK_CRYPTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/compress/compressor.h"
#include "src/core/options.h"
#include "src/core/pack.h"
#include "src/crypto/crypto.h"
#include "src/crypto/keyring.h"

namespace minicrypt {

// Move-only: `pin` leases the sealing epoch from the keyring until the
// envelope has been durably written (callers destroy the SealedPack when the
// write returns), which is what lets rotation drain in-flight old-epoch
// seals before retiring (Keyring::WaitForDrainBelow).
struct SealedPack {
  std::string envelope;  // versioned header || IV || ciphertext || GCM tag
  std::string hash;      // SHA-256(envelope), header included
  uint64_t epoch = 0;    // key epoch the pack was sealed under
  Keyring::Pin pin;
};

class PackCrypter {
 public:
  // `keyring` is shared by every client of the customer; pack subkeys are
  // derived per epoch so packs and packIDs use independent keys.
  PackCrypter(const MiniCryptOptions& options, std::shared_ptr<Keyring> keyring);

  // Legacy convenience: wraps a bare customer key in a fresh epoch-0 keyring
  // private to this crypter. Derivations match the pre-keyring code exactly.
  PackCrypter(const MiniCryptOptions& options, const SymmetricKey& key);

  // `context` is bound into the AAD (pass the stored packID). Callers that
  // seal outside any row context (benches, index packs with their own
  // framing) may leave it empty — the table and epoch are always bound.
  Result<SealedPack> Seal(const Pack& pack, std::string_view context = {}) const;
  Result<Pack> Open(std::string_view envelope, std::string_view context = {}) const;

  // Seals a single row value (APPEND-mode puts and the encrypted baseline
  // client compress+encrypt one row at a time). Same envelope versioning,
  // AAD binds table + epoch only.
  Result<std::string> SealValue(std::string_view value) const;
  Result<std::string> OpenValue(std::string_view envelope) const;

  // Key epoch an envelope claims in its header (0 for legacy v1 envelopes).
  // Reads the unauthenticated header only — cheap, but only Open proves the
  // claim. Rotation uses this to skip packs already sealed at the target.
  static uint64_t EnvelopeEpoch(std::string_view envelope);

  const Compressor* codec() const { return codec_; }
  const std::shared_ptr<Keyring>& keyring() const { return keyring_; }

 private:
  Result<SymmetricKey> PackKeyFor(uint64_t epoch) const;
  std::string AadFor(uint64_t epoch, std::string_view context) const;

  const Compressor* codec_;
  PaddingTiers padding_;
  std::string table_;
  std::shared_ptr<Keyring> keyring_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_CORE_PACK_CRYPTER_H_
