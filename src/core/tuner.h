// Empirical pack-size selection (paper §8.3): MiniCrypt provides a tool that
// takes a representative dataset and workload, measures throughput at a set
// of candidate pack sizes, and picks the argmax. The paper also reports a
// closed-form heuristic observed to match the empirical optimum — the
// smallest pack size whose compressed dataset fits in memory — which this
// tuner can evaluate too.

#ifndef MINICRYPT_SRC_CORE_TUNER_H_
#define MINICRYPT_SRC_CORE_TUNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/options.h"
#include "src/crypto/crypto.h"
#include "src/kvstore/cluster.h"

namespace minicrypt {

struct TunerPoint {
  size_t pack_rows = 0;
  double throughput_ops_s = 0.0;
  double compression_ratio = 0.0;
  size_t at_rest_bytes = 0;
};

struct TunerReport {
  std::vector<TunerPoint> points;
  size_t best_pack_rows = 0;           // empirical argmax
  size_t heuristic_pack_rows = 0;      // smallest n with ratio(n)*data < memory
};

class PackSizeTuner {
 public:
  // `make_cluster` builds a fresh cluster for each candidate (so cache state
  // does not leak between runs); `rows` is the representative dataset;
  // `read_keys` the representative read workload (keys drawn by the caller's
  // distribution); `run_micros` the measurement window per candidate.
  struct Config {
    std::vector<size_t> candidate_pack_rows = {1, 5, 10, 25, 50, 100, 200, 400};
    uint64_t run_micros = 1'000'000;
    int client_threads = 4;
    size_t memory_budget_bytes = 0;  // for the heuristic; 0 = cluster cache size
  };

  PackSizeTuner(MiniCryptOptions base_options, SymmetricKey key, Config config);

  Result<TunerReport> Run(
      const std::function<std::unique_ptr<Cluster>()>& make_cluster,
      const std::vector<std::pair<uint64_t, std::string>>& rows,
      const std::vector<uint64_t>& read_keys);

 private:
  MiniCryptOptions base_options_;
  SymmetricKey key_;
  Config config_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_CORE_TUNER_H_
