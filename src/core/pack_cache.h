// Client-side decrypted-pack cache (shared, sharded, version-validated).
//
// MiniCrypt's read path pays a full envelope fetch + decrypt + decompress per
// Get even when consecutive gets hit the same pack. This cache keeps recently
// opened packs in client memory, keyed by (table, partition, packID) and
// guarded by the pack's LWT version — the SHA-256 envelope hash the server
// already stores as the update-if token. A cached entry is only served after a
// cheap version-only floor probe (Cluster::ReadFloorCell) confirms the stored
// hash still matches, so the cache can never return bytes the server has since
// replaced. Holding plaintext here does not weaken the threat model: the cache
// lives on the key-holding client, which can decrypt every envelope anyway.
//
// Coherence protocol (see docs/ARCHITECTURE.md "Client pack cache"):
//   * read  — probe the server floor for the hash column only; serve the
//     cached pack iff (packID, hash) match, else refetch and replace.
//   * write — on an acked LWT, Put() the post-image under the new hash; on
//     ConditionFailed or an ambiguous (Unavailable) LWT, Invalidate().
//   * ttl   — with cache_ttl_micros > 0, entries validated within the TTL may
//     be served without probing (bounded staleness, opt-in). ttl == 0 (the
//     default) probes on every read and is fully coherent.

#ifndef MINICRYPT_SRC_CORE_PACK_CACHE_H_
#define MINICRYPT_SRC_CORE_PACK_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/core/pack.h"

namespace minicrypt {

struct PackCacheStats {
  uint64_t hits = 0;           // probe-confirmed + TTL-fresh serves
  uint64_t ttl_hits = 0;       // subset of hits served without a probe
  uint64_t misses = 0;         // lookups that required an envelope fetch
  uint64_t revalidations = 0;  // probe confirmed a cached version
  uint64_t invalidations = 0;  // version mismatch or explicit Invalidate()
  uint64_t evictions = 0;
  uint64_t bytes_used = 0;
};

// Thread-safe. Multiple GenericClient / AppendClient instances may share one
// PackCache (pass the same shared_ptr); packs are handed out as
// shared_ptr<const Pack> so readers never see a mutating entry.
class PackCache {
 public:
  struct CachedPack {
    std::shared_ptr<const Pack> pack;
    std::string hash;             // envelope hash the pack was opened from
    uint64_t validated_at_micros = 0;
  };

  // `capacity_bytes` == 0 disables the cache (every lookup misses, Put is a
  // no-op). `ttl_micros` == 0 means entries are never TTL-fresh: every read
  // revalidates against the server.
  PackCache(size_t capacity_bytes, uint64_t ttl_micros, Clock* clock, int shards = 8);

  // Convenience: build a cache from client options, or nullptr when the
  // options leave caching off.
  static std::shared_ptr<PackCache> FromOptions(size_t capacity_bytes, uint64_t ttl_micros,
                                                Clock* clock);

  bool enabled() const { return capacity_ > 0; }
  size_t capacity_bytes() const { return capacity_; }
  uint64_t ttl_micros() const { return ttl_micros_; }

  // Greatest cached packID <= stored_key within (table, partition), i.e. the
  // cached candidate for the pack owning stored_key. With `only_fresh` the
  // entry is returned only when validated within the TTL. Does not count
  // hit/miss — the caller decides whether the candidate is usable.
  std::optional<std::pair<std::string, CachedPack>> Floor(std::string_view table,
                                                          std::string_view partition,
                                                          std::string_view stored_key,
                                                          bool only_fresh);

  // The probe-confirm step: returns the cached pack iff an entry for pack_id
  // exists and its hash equals `expected_hash` (the hash the server floor just
  // reported). Counts a hit + revalidation on match (and refreshes the TTL
  // stamp), an invalidation + miss on version mismatch (entry dropped), and a
  // plain miss when absent.
  std::shared_ptr<const Pack> ValidateAndGet(std::string_view table, std::string_view partition,
                                             std::string_view pack_id,
                                             std::string_view expected_hash);

  // Caller served a TTL-fresh entry without probing; account it as a hit.
  void RecordTtlServe();

  // Insert or replace. The entry is stamped validated-now.
  void Put(std::string_view table, std::string_view partition, std::string_view pack_id,
           std::shared_ptr<const Pack> pack, std::string hash);

  // Drop one entry (ambiguous LWT, lost race, version skew).
  void Invalidate(std::string_view table, std::string_view partition, std::string_view pack_id);

  PackCacheStats Stats() const;

 private:
  struct Slot {
    CachedPack cached;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_it;  // into Shard::lru
  };
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, Slot> map;  // ordered: enables Floor()
    std::list<std::string> lru;       // front = most recent, holds map keys
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t ttl_hits = 0;
    uint64_t misses = 0;
    uint64_t revalidations = 0;
    uint64_t invalidations = 0;
    uint64_t evictions = 0;
  };

  // varint(len(table)) || table || varint(len(partition)) || partition.
  // All packIDs of one (table, partition) share a scope prefix, so Floor is an
  // upper_bound within one shard's ordered map.
  static std::string ScopePrefix(std::string_view table, std::string_view partition);

  Shard& ShardForScope(std::string_view scope);
  void TouchLocked(Shard& shard, Slot& slot, const std::string& key);
  void EvictLocked(Shard& shard);
  bool FreshLocked(const CachedPack& cached) const;

  const size_t capacity_;
  const uint64_t ttl_micros_;
  Clock* const clock_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_CORE_PACK_CACHE_H_
