#include "src/core/append/epoch.h"

#include "src/common/coding.h"

namespace minicrypt {

std::string_view EpochStatusName(EpochStatus status) {
  switch (status) {
    case EpochStatus::kNotMerged:
      return "NOT_MERGED";
    case EpochStatus::kMerged:
      return "MERGED";
    case EpochStatus::kDeleted:
      return "DELETED";
  }
  return "UNKNOWN";
}

std::string EpochPartition(uint64_t epoch) { return "e" + std::to_string(epoch); }

Row MakeStatsRow(EpochStatus status, std::string_view client,
                 std::optional<uint64_t> min_key) {
  Row row;
  row.cells[std::string(kStatusColumn)] =
      Cell{std::string(1, static_cast<char>(status)), 0, false};
  if (!client.empty()) {
    row.cells[std::string(kClientColumn)] = Cell{std::string(client), 0, false};
  }
  if (min_key.has_value()) {
    row.cells[std::string(kMinKeyColumn)] = Cell{EncodeKey64(*min_key), 0, false};
  }
  return row;
}

Result<EpochStats> ParseStatsRow(std::string_view clustering, const Row& row) {
  EpochStats out;
  MC_ASSIGN_OR_RETURN(out.epoch, DecodeKey64(clustering));
  auto st = row.cells.find(kStatusColumn);
  if (st == row.cells.end() || st->second.value.empty()) {
    return Status::Corruption("stats row missing status");
  }
  const auto raw = static_cast<uint8_t>(st->second.value[0]);
  if (raw > static_cast<uint8_t>(EpochStatus::kDeleted)) {
    return Status::Corruption("stats row has invalid status byte");
  }
  out.status = static_cast<EpochStatus>(raw);
  auto cl = row.cells.find(kClientColumn);
  if (cl != row.cells.end()) {
    out.client = cl->second.value;
  }
  auto mk = row.cells.find(kMinKeyColumn);
  if (mk != row.cells.end()) {
    MC_ASSIGN_OR_RETURN(uint64_t key, DecodeKey64(mk->second.value));
    out.min_key = key;
  }
  return out;
}

}  // namespace minicrypt
