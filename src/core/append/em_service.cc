#include "src/core/append/em_service.h"

#include <algorithm>

#include "src/common/coding.h"
#include "src/obs/metrics.h"

namespace minicrypt {

namespace {

Cell PlainCell(std::string value) { return Cell{std::move(value), 0, false}; }

Result<uint64_t> CellAsKey64(const Row& row, std::string_view column) {
  auto it = row.cells.find(column);
  if (it == row.cells.end()) {
    return Status::NotFound("missing cell");
  }
  return DecodeKey64(it->second.value);
}

}  // namespace

std::string EmService::MetaTable(const MiniCryptOptions& options) {
  return options.table + ".meta";
}

EmService::EmService(Cluster* cluster, const MiniCryptOptions& options, std::string replica_id,
                     Clock* clock)
    : cluster_(cluster),
      options_(options),
      meta_table_(MetaTable(options)),
      replica_id_(std::move(replica_id)),
      clock_(clock) {}

EmService::~EmService() { Stop(); }

Status EmService::Bootstrap() {
  MC_RETURN_IF_ERROR(cluster_->CreateTable(meta_table_, /*server_compression=*/false));
  MC_RETURN_IF_ERROR(cluster_->CreateTable(options_.table, /*server_compression=*/false));
  // Seed g_epoch = 1 (epoch 0 is reserved for merged packs). IF NOT EXISTS so
  // only the first replica's seed wins.
  Row seed;
  seed.cells[std::string(kEpochColumn)] = PlainCell(EncodeKey64(1));
  seed.cells[std::string(kAdvanceTsColumn)] = PlainCell(EncodeKey64(clock_->NowMicros()));
  const Status s = cluster_->WriteIf(meta_table_, kEmPartition, kGEpochRow, seed,
                                     LwtCondition::NotExists());
  if (!s.ok() && !s.IsConditionFailed()) {
    return s;
  }
  return Status::Ok();
}

Result<uint64_t> EmService::ReadGlobalEpoch() {
  MC_ASSIGN_OR_RETURN(Row row, cluster_->Read(meta_table_, kEmPartition, kGEpochRow));
  return CellAsKey64(row, kEpochColumn);
}

Status EmService::MaintainMastership(uint64_t now) {
  auto master = cluster_->Read(meta_table_, kEmPartition, kMasterRow);
  if (!master.ok()) {
    if (!master.status().IsNotFound()) {
      return master.status();
    }
    // No master yet: claim with IF NOT EXISTS.
    Row claim;
    claim.cells[std::string(kEmIdColumn)] = PlainCell(replica_id_);
    claim.cells[std::string(kHeartbeatColumn)] = PlainCell(EncodeKey64(now));
    const Status s = cluster_->WriteIf(meta_table_, kEmPartition, kMasterRow, claim,
                                       LwtCondition::NotExists());
    is_master_ = s.ok();
    if (!s.ok() && !s.IsConditionFailed()) {
      return s;
    }
    return Status::Ok();
  }

  auto id = master->cells.find(kEmIdColumn);
  auto hb = CellAsKey64(*master, kHeartbeatColumn);
  const std::string current_id = id != master->cells.end() ? id->second.value : "";
  const uint64_t last_hb = hb.ok() ? *hb : 0;

  if (current_id == replica_id_) {
    // Refresh our heartbeat, conditioned on still being master.
    Row refresh;
    refresh.cells[std::string(kEmIdColumn)] = PlainCell(replica_id_);
    refresh.cells[std::string(kHeartbeatColumn)] = PlainCell(EncodeKey64(now));
    const Status s =
        cluster_->WriteIf(meta_table_, kEmPartition, kMasterRow, refresh,
                          LwtCondition::CellEquals(std::string(kEmIdColumn), replica_id_));
    is_master_ = s.ok();
    if (!s.ok() && !s.IsConditionFailed()) {
      return s;
    }
    return Status::Ok();
  }

  // Someone else is master; take over only when their heartbeat is stale
  // (paper §6.2). The CAS on the id cell arbitrates concurrent takeovers.
  if (now > last_hb && now - last_hb > options_.client_timeout_micros) {
    Row takeover;
    takeover.cells[std::string(kEmIdColumn)] = PlainCell(replica_id_);
    takeover.cells[std::string(kHeartbeatColumn)] = PlainCell(EncodeKey64(now));
    const Status s =
        cluster_->WriteIf(meta_table_, kEmPartition, kMasterRow, takeover,
                          LwtCondition::CellEquals(std::string(kEmIdColumn), current_id));
    is_master_ = s.ok();
    if (!s.ok() && !s.IsConditionFailed()) {
      return s;
    }
  } else {
    is_master_ = false;
  }
  return Status::Ok();
}

Status EmService::AdvanceEpochIfDue(uint64_t now) {
  MC_ASSIGN_OR_RETURN(Row row, cluster_->Read(meta_table_, kEmPartition, kGEpochRow));
  MC_ASSIGN_OR_RETURN(uint64_t g_epoch, CellAsKey64(row, kEpochColumn));
  auto advance_ts = CellAsKey64(row, kAdvanceTsColumn);
  const uint64_t last_advance = advance_ts.ok() ? *advance_ts : 0;
  if (now < last_advance + options_.epoch_micros) {
    return Status::Ok();
  }
  // CAS on the stored epoch value: concurrent masters advance it exactly once
  // (paper §6.2: multiple masters may safely update the global epoch).
  Row next;
  next.cells[std::string(kEpochColumn)] = PlainCell(EncodeKey64(g_epoch + 1));
  next.cells[std::string(kAdvanceTsColumn)] = PlainCell(EncodeKey64(now));
  const Status s =
      cluster_->WriteIf(meta_table_, kEmPartition, kGEpochRow, next,
                        LwtCondition::CellEquals(std::string(kEpochColumn), EncodeKey64(g_epoch)));
  if (!s.ok() && !s.IsConditionFailed()) {
    return s;
  }
  if (s.ok()) {
    OBS_COUNTER_INC("em.epoch.advanced");
    // Open a stats row for the newly closed epoch so mergers can find it.
    Row stats = MakeStatsRow(EpochStatus::kNotMerged, "", std::nullopt);
    const Status st = cluster_->WriteIf(meta_table_, kStatsPartition, EncodeKey64(g_epoch),
                                        stats, LwtCondition::NotExists());
    if (!st.ok() && !st.IsConditionFailed()) {
      return st;
    }
  }
  return Status::Ok();
}

Status EmService::RecordMinKeys(uint64_t g_epoch) {
  // For every closed epoch whose stats row lacks a min key, read the epoch's
  // first row and record it. Closed means epoch <= g_epoch - 1.
  MC_ASSIGN_OR_RETURN(auto stats_rows, cluster_->ReadRange(meta_table_, kStatsPartition,
                                                           EncodeKey64(1), EncodeKey64(~0ULL)));
  for (const auto& [clustering, row] : stats_rows) {
    auto stats = ParseStatsRow(clustering, row);
    if (!stats.ok() || stats->min_key.has_value() || stats->epoch >= g_epoch ||
        stats->status == EpochStatus::kDeleted) {
      continue;
    }
    MC_ASSIGN_OR_RETURN(auto first,
                        cluster_->ReadRange(options_.table, EpochPartition(stats->epoch),
                                            EncodeKey64(0), EncodeKey64(~0ULL), /*limit=*/1));
    if (first.empty()) {
      continue;  // idle epoch, nothing to record yet
    }
    MC_ASSIGN_OR_RETURN(uint64_t min_key, DecodeKey64(first.front().first));
    Row update;
    update.cells[std::string(kMinKeyColumn)] = PlainCell(EncodeKey64(min_key));
    // Blind add of the min-key cell: the value is deterministic (the epoch is
    // closed), so concurrent recorders write identical bytes.
    MC_RETURN_IF_ERROR(
        cluster_->Write(meta_table_, kStatsPartition, clustering, update));
  }
  return Status::Ok();
}

Result<std::vector<std::string>> EmService::LiveClients(uint64_t now) {
  MC_ASSIGN_OR_RETURN(auto rows, cluster_->ReadRange(meta_table_, kClientsPartition, "",
                                                     std::string(64, '\xff')));
  std::vector<std::string> live;
  for (const auto& [client_id, row] : rows) {
    auto hb = CellAsKey64(row, kHeartbeatColumn);
    if (hb.ok() && now >= *hb && now - *hb <= options_.client_timeout_micros) {
      live.push_back(std::string(client_id));
    }
  }
  return live;
}

Status EmService::AssignEpochs(uint64_t g_epoch, uint64_t now) {
  MC_ASSIGN_OR_RETURN(std::vector<std::string> live, LiveClients(now));
  if (live.empty()) {
    return Status::Ok();
  }
  std::sort(live.begin(), live.end());
  MC_ASSIGN_OR_RETURN(auto stats_rows, cluster_->ReadRange(meta_table_, kStatsPartition,
                                                           EncodeKey64(1), EncodeKey64(~0ULL)));
  size_t rr = 0;
  for (const auto& [clustering, row] : stats_rows) {
    auto stats = ParseStatsRow(clustering, row);
    if (!stats.ok() || stats->status != EpochStatus::kNotMerged) {
      continue;
    }
    // Mergeable epochs are those at least two behind the global epoch.
    if (stats->epoch + 2 > g_epoch) {
      continue;
    }
    const bool assignee_alive =
        !stats->client.empty() && std::binary_search(live.begin(), live.end(), stats->client);
    if (assignee_alive) {
      continue;
    }
    // Assign (or re-assign from a dead client) round-robin over live clients.
    const std::string& chosen = live[rr++ % live.size()];
    Row update;
    update.cells[std::string(kClientColumn)] = PlainCell(chosen);
    MC_RETURN_IF_ERROR(cluster_->Write(meta_table_, kStatsPartition, clustering, update));
  }
  return Status::Ok();
}

Status EmService::Tick() {
  OBS_SPAN("em.tick");
  const uint64_t now = clock_->NowMicros();
  MC_RETURN_IF_ERROR(MaintainMastership(now));
  if (!is_master_) {
    return Status::Ok();
  }
  MC_RETURN_IF_ERROR(AdvanceEpochIfDue(now));
  MC_ASSIGN_OR_RETURN(uint64_t g_epoch, ReadGlobalEpoch());
  MC_RETURN_IF_ERROR(RecordMinKeys(g_epoch));
  return AssignEpochs(g_epoch, now);
}

void EmService::Start(uint64_t period_micros) {
  Stop();
  task_ = std::make_unique<PeriodicTask>([this] { (void)Tick(); }, period_micros);
}

void EmService::Stop() { task_.reset(); }

}  // namespace minicrypt
