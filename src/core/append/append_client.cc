#include "src/core/append/append_client.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/common/coding.h"
#include "src/core/pack.h"
#include "src/obs/metrics.h"

namespace minicrypt {

namespace {

constexpr std::string_view kValueColumn = "v";
constexpr std::string_view kHashColumn = "h";

Cell PlainCell(std::string value) { return Cell{std::move(value), 0, false}; }

// Each client's jitter stream is derived from its ID so fleets of append
// clients desynchronize their retries.
uint64_t JitterSeedFor(const MiniCryptOptions& options, std::string_view client_id) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a over the client id
  for (const char c : client_id) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001B3ULL;
  }
  const uint64_t base = options.retry_jitter_seed != 0 ? options.retry_jitter_seed
                                                       : 0x6D696E6963727970ULL;
  const uint64_t seed = base ^ h;
  return seed != 0 ? seed : 1;
}

}  // namespace

AppendClient::AppendClient(Cluster* cluster, const MiniCryptOptions& options,
                           const SymmetricKey& key, std::string client_id, Clock* clock,
                           std::shared_ptr<PackCache> cache)
    : cluster_(cluster),
      options_(options),
      meta_table_(EmService::MetaTable(options)),
      crypter_(options, key),
      client_id_(std::move(client_id)),
      clock_(clock),
      cache_(cache != nullptr ? std::move(cache)
                              : PackCache::FromOptions(options.cache_capacity_bytes,
                                                       options.cache_ttl_micros, clock)),
      backoff_(options.retry_backoff_base_micros, options.retry_backoff_max_micros,
               JitterSeedFor(options, client_id_)) {}

AppendClient::~AppendClient() { Stop(); }

Status AppendClient::RetryUnavailable(const std::function<Status()>& op, std::string_view what) {
  Status s = Status::Ok();
  for (int attempt = 0; attempt < options_.max_put_retries; ++attempt) {
    if (attempt > 0) {
      OBS_COUNTER_INC("append.unavailable_retries");
      uint64_t delay = 0;
      {
        std::lock_guard<std::mutex> lock(backoff_mu_);
        delay = backoff_.NextDelayMicros(attempt - 1);
      }
      if (delay > 0) {
        OBS_COUNTER_ADD("client.backoff_micros", delay);
        clock_->SleepMicros(delay);
      }
    }
    s = op();
    if (!s.IsUnavailable()) {
      return s;
    }
  }
  return Status::Unavailable(std::string(what) + " ran out of retries: " + s.message());
}

Status AppendClient::Register() {
  MC_RETURN_IF_ERROR(HeartbeatOnce());
  return SyncEpoch();
}

Status AppendClient::SyncEpoch() {
  return RetryUnavailable([this] { return SyncEpochOnce(); }, "epoch sync");
}

Status AppendClient::SyncEpochOnce() {
  OBS_SPAN("append.epoch.sync");
  MC_ASSIGN_OR_RETURN(Row row, cluster_->Read(meta_table_, kEmPartition, kGEpochRow));
  auto it = row.cells.find(kEpochColumn);
  if (it == row.cells.end()) {
    return Status::Corruption("g_epoch row missing epoch cell");
  }
  MC_ASSIGN_OR_RETURN(uint64_t g_epoch, DecodeKey64(it->second.value));
  if (g_epoch != c_epoch_.exchange(g_epoch, std::memory_order_acq_rel)) {
    OBS_COUNTER_INC("append.epoch.renewals");
  }
  return Status::Ok();
}

Status AppendClient::HeartbeatOnce() {
  MC_RETURN_IF_ERROR(RetryUnavailable(
      [this] {
        Row hb;
        hb.cells[std::string(kHeartbeatColumn)] = PlainCell(EncodeKey64(clock_->NowMicros()));
        return cluster_->Write(meta_table_, kClientsPartition, client_id_, hb);
      },
      "heartbeat"));
  return SyncEpoch();
}

Status AppendClient::Put(uint64_t key, std::string_view value) {
  OBS_SPAN("append.put");
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  MC_ASSIGN_OR_RETURN(std::string envelope, crypter_.SealValue(value));
  // Single-row insert under (epoch, key) — no read, no update-if (§6.1.2).
  // The epoch is re-read per attempt: a retry that straddles an epoch sync
  // must land in the client's *current* epoch or the merge-safety window
  // (paper §6.1) no longer covers it.
  return RetryUnavailable(
      [&] {
        Row row;
        row.cells[std::string(kValueColumn)] = PlainCell(envelope);
        const uint64_t epoch = c_epoch_.load(std::memory_order_acquire);
        return cluster_->Write(options_.table, EpochPartition(epoch), EncodeKey64(key), row);
      },
      "append put");
}

Result<std::string> AppendClient::ProbeEpoch(uint64_t epoch, std::string_view encoded_key) {
  OBS_COUNTER_INC("append.get.epoch_probes");
  stats_.get_epoch_probes.fetch_add(1, std::memory_order_relaxed);
  MC_ASSIGN_OR_RETURN(Row row,
                      cluster_->Read(options_.table, EpochPartition(epoch), encoded_key));
  auto it = row.cells.find(kValueColumn);
  if (it == row.cells.end()) {
    return Status::NotFound();
  }
  return crypter_.OpenValue(it->second.value);
}

Result<std::shared_ptr<const Pack>> AppendClient::OpenMergedPack(std::string_view pack_id,
                                                                 const Row& row) {
  auto v = row.cells.find(kValueColumn);
  if (v == row.cells.end()) {
    return Status::Corruption("pack row missing value cell");
  }
  auto h = row.cells.find(kHashColumn);
  const bool use_cache = cache_ != nullptr && h != row.cells.end();
  const std::string partition = EpochPartition(kMergedEpoch);
  if (use_cache) {
    if (auto pack = cache_->ValidateAndGet(options_.table, partition, pack_id, h->second.value)) {
      return pack;  // identical bytes by hash: skip the decrypt + decompress
    }
  }
  MC_ASSIGN_OR_RETURN(Pack pack, crypter_.Open(v->second.value));
  auto shared = std::make_shared<const Pack>(std::move(pack));
  if (use_cache) {
    cache_->Put(options_.table, partition, pack_id, shared, h->second.value);
  }
  return shared;
}

Result<std::string> AppendClient::ProbeMergedPacks(std::string_view encoded_key) {
  const std::string partition = EpochPartition(kMergedEpoch);
  if (cache_ != nullptr) {
    // TTL fast path: only positive hits may be served without a probe — a
    // TTL-fresh pack can legitimately lack a key merged after it was cached.
    if (auto fresh = cache_->Floor(options_.table, partition, encoded_key, /*only_fresh=*/true)) {
      if (auto value = fresh->second.pack->Find(encoded_key)) {
        cache_->RecordTtlServe();
        return std::string(*value);
      }
    }
    if (auto candidate = cache_->Floor(options_.table, partition, encoded_key,
                                       /*only_fresh=*/false)) {
      auto probe = cluster_->ReadFloorCell(options_.table, partition, encoded_key, kHashColumn);
      if (probe.ok()) {
        auto pack = cache_->ValidateAndGet(options_.table, partition, probe->first, probe->second);
        if (pack == nullptr) {
          OBS_SPAN("pack.fetch");
          auto row = cluster_->Read(options_.table, partition, probe->first);
          if (row.ok()) {
            MC_ASSIGN_OR_RETURN(pack, OpenMergedPack(probe->first, *row));
          } else if (!row.status().IsNotFound()) {
            return row.status();
          }  // NotFound: a replica raced the probe; fall back to the full floor
        }
        if (pack != nullptr) {
          auto value = pack->Find(encoded_key);
          if (!value.has_value()) {
            return Status::NotFound();
          }
          return std::string(*value);
        }
      } else if (probe.status().IsNotFound()) {
        // No merged pack at or below the key (the candidate outlived a table
        // drop, or the floor row lacks the hash cell): the probe's NotFound
        // is the answer.
        cache_->Invalidate(options_.table, partition, candidate->first);
        return Status::NotFound();
      } else {
        return probe.status();
      }
    }
  }
  OBS_SPAN("pack.fetch");
  MC_ASSIGN_OR_RETURN(auto found, cluster_->ReadFloor(options_.table, partition, encoded_key));
  MC_ASSIGN_OR_RETURN(auto pack, OpenMergedPack(found.first, found.second));
  auto value = pack->Find(encoded_key);
  if (!value.has_value()) {
    return Status::NotFound();
  }
  return std::string(*value);
}

Result<std::string> AppendClient::Get(uint64_t key) {
  OBS_SPAN("append.get");
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  const std::string encoded = EncodeKey64(key);

  // Step 1: merged packs in epoch 0 (§6.1.3).
  auto merged = ProbeMergedPacks(encoded);
  if (merged.ok() || !merged.status().IsNotFound()) {
    return merged;
  }

  // Step 2: locate the covering epoch via the stats table's min keys, then
  // probe epochs e and e-1.
  MC_ASSIGN_OR_RETURN(auto stats_rows, cluster_->ReadRange(meta_table_, kStatsPartition,
                                                           EncodeKey64(1), EncodeKey64(~0ULL)));
  uint64_t best_epoch = 0;
  uint64_t best_min = 0;
  for (const auto& [clustering, row] : stats_rows) {
    auto stats = ParseStatsRow(clustering, row);
    if (!stats.ok() || !stats->min_key.has_value() ||
        stats->status == EpochStatus::kDeleted) {
      continue;
    }
    if (*stats->min_key <= key && (best_epoch == 0 || *stats->min_key >= best_min)) {
      best_epoch = stats->epoch;
      best_min = *stats->min_key;
    }
  }
  if (best_epoch != 0) {
    auto hit = ProbeEpoch(best_epoch, encoded);
    if (hit.ok() || !hit.status().IsNotFound()) {
      return hit;
    }
    if (best_epoch > 1) {
      hit = ProbeEpoch(best_epoch - 1, encoded);
      if (hit.ok() || !hit.status().IsNotFound()) {
        return hit;
      }
    }
  }

  // Step 2b (refinement): the stats table lags the open epochs, so a freshly
  // appended key may only exist under c_epoch or c_epoch - 1.
  const uint64_t open = c_epoch_.load(std::memory_order_acquire);
  for (uint64_t e : {open, open > 1 ? open - 1 : open}) {
    if (e == best_epoch || (best_epoch > 1 && e == best_epoch - 1)) {
      continue;
    }
    auto hit = ProbeEpoch(e, encoded);
    if (hit.ok() || !hit.status().IsNotFound()) {
      return hit;
    }
  }

  // Step 3: the key may have been merged between our probes — re-check
  // epoch 0 once (§6.1.3).
  return ProbeMergedPacks(encoded);
}

Result<std::vector<std::pair<uint64_t, std::string>>> AppendClient::GetRange(uint64_t low,
                                                                             uint64_t high) {
  if (low > high) {
    return Status::InvalidArgument("low > high");
  }
  const std::string klo = EncodeKey64(low);
  const std::string khi = EncodeKey64(high);
  std::map<uint64_t, std::string> merged;

  // Merged packs in epoch 0 (Figure 4, applied to the e0 partition): packs
  // with IDs in [low, high], plus the boundary pack holding `low`.
  MC_ASSIGN_OR_RETURN(auto pack_rows, cluster_->ReadRange(options_.table,
                                                          EpochPartition(kMergedEpoch), klo,
                                                          khi));
  bool need_floor = pack_rows.empty() || pack_rows.front().first != klo;
  std::vector<std::shared_ptr<const Pack>> packs;
  for (const auto& [id, row] : pack_rows) {
    auto v = row.cells.find(kValueColumn);
    if (v == row.cells.end()) {
      continue;
    }
    MC_ASSIGN_OR_RETURN(auto pack, OpenMergedPack(id, row));
    packs.push_back(std::move(pack));
  }
  if (need_floor) {
    auto floor = cluster_->ReadFloor(options_.table, EpochPartition(kMergedEpoch), klo);
    if (floor.ok()) {
      auto v = floor->second.cells.find(kValueColumn);
      if (v != floor->second.cells.end()) {
        MC_ASSIGN_OR_RETURN(auto pack, OpenMergedPack(floor->first, floor->second));
        packs.push_back(std::move(pack));
      }
    } else if (!floor.status().IsNotFound()) {
      return floor.status();
    }
  }
  for (const auto& pack : packs) {
    for (const auto& entry : pack->entries()) {
      if (entry.key >= klo && entry.key <= khi) {
        MC_ASSIGN_OR_RETURN(uint64_t k, DecodeKey64(entry.key));
        merged.emplace(k, entry.value);
      }
    }
  }

  // Raw rows in every live epoch (stats table) plus the open epochs the
  // stats table does not list yet.
  std::set<uint64_t> epochs;
  MC_ASSIGN_OR_RETURN(auto stats_rows, cluster_->ReadRange(meta_table_, kStatsPartition,
                                                           EncodeKey64(1), EncodeKey64(~0ULL)));
  for (const auto& [clustering, row] : stats_rows) {
    auto stats = ParseStatsRow(clustering, row);
    if (stats.ok() && stats->status != EpochStatus::kDeleted) {
      epochs.insert(stats->epoch);
    }
  }
  const uint64_t open = c_epoch_.load(std::memory_order_acquire);
  epochs.insert(open);
  if (open > 1) {
    epochs.insert(open - 1);
  }
  for (uint64_t epoch : epochs) {
    MC_ASSIGN_OR_RETURN(auto rows,
                        cluster_->ReadRange(options_.table, EpochPartition(epoch), klo, khi));
    for (const auto& [clustering, row] : rows) {
      auto v = row.cells.find(kValueColumn);
      if (v == row.cells.end()) {
        continue;
      }
      MC_ASSIGN_OR_RETURN(uint64_t k, DecodeKey64(clustering));
      if (merged.count(k) != 0) {
        continue;  // already found in a pack (merge window duplicate)
      }
      MC_ASSIGN_OR_RETURN(std::string value, crypter_.OpenValue(v->second.value));
      merged.emplace(k, std::move(value));
    }
  }

  std::vector<std::pair<uint64_t, std::string>> out;
  out.reserve(merged.size());
  for (auto& [k, v] : merged) {
    out.emplace_back(k, std::move(v));
  }
  return out;
}

Result<std::vector<std::pair<uint64_t, std::string>>> AppendClient::ReadEpochRows(
    uint64_t epoch) {
  std::vector<std::pair<uint64_t, std::string>> out;
  if (epoch < 1) {
    return out;
  }
  MC_ASSIGN_OR_RETURN(auto rows, cluster_->ReadRange(options_.table, EpochPartition(epoch),
                                                     EncodeKey64(0), EncodeKey64(~0ULL)));
  out.reserve(rows.size());
  for (const auto& [clustering, row] : rows) {
    auto v = row.cells.find(kValueColumn);
    if (v == row.cells.end()) {
      continue;
    }
    MC_ASSIGN_OR_RETURN(std::string value, crypter_.OpenValue(v->second.value));
    MC_ASSIGN_OR_RETURN(uint64_t key, DecodeKey64(clustering));
    out.emplace_back(key, std::move(value));
  }
  return out;
}

Status AppendClient::MergeEpoch(uint64_t epoch) {
  OBS_SPAN("append.merge");
  // Paper §6.1.4: read e-1, e, e+1; merge keys in [k_min,e, k_min,e+1).
  MC_ASSIGN_OR_RETURN(auto prev_rows, ReadEpochRows(epoch - 1));
  MC_ASSIGN_OR_RETURN(auto cur_rows, ReadEpochRows(epoch));
  MC_ASSIGN_OR_RETURN(auto next_rows, ReadEpochRows(epoch + 1));
  if (cur_rows.empty()) {
    // Idle epoch: nothing to merge; mark it merged so deletion can proceed.
    Row update;
    update.cells[std::string(kStatusColumn)] =
        PlainCell(std::string(1, static_cast<char>(EpochStatus::kMerged)));
    MC_RETURN_IF_ERROR(
        cluster_->Write(meta_table_, kStatsPartition, EncodeKey64(epoch), update));
    stats_.epochs_merged.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  if (next_rows.empty()) {
    // The upper marker k_min,e+1 does not exist yet; defer (see DESIGN.md).
    return Status::Aborted("next epoch empty; merge deferred");
  }

  uint64_t kmin_e = cur_rows.front().first;
  for (const auto& [key, value] : cur_rows) {
    kmin_e = std::min(kmin_e, key);
  }
  uint64_t kmin_next = next_rows.front().first;
  for (const auto& [key, value] : next_rows) {
    kmin_next = std::min(kmin_next, key);
  }

  // Deterministic selection: every client computing this merge arrives at the
  // same key set, ordering, and pack boundaries (paper §6.1, §6.3).
  std::map<uint64_t, std::string> selected;
  auto take = [&](std::vector<std::pair<uint64_t, std::string>>& rows) {
    for (auto& [key, value] : rows) {
      if (key >= kmin_e && key < kmin_next) {
        selected[key] = std::move(value);
      }
    }
  };
  take(prev_rows);
  take(cur_rows);
  take(next_rows);

  // Cut into packs of pack_rows, insert into epoch 0 with IF NOT EXISTS: a
  // concurrent merger of the same epoch inserts identical packs, so losing
  // the race is harmless.
  std::vector<Pack::Entry> chunk;
  chunk.reserve(options_.pack_rows);
  auto flush_chunk = [&]() -> Status {
    if (chunk.empty()) {
      return Status::Ok();
    }
    MC_ASSIGN_OR_RETURN(Pack pack, Pack::FromSorted(std::move(chunk)));
    chunk.clear();
    MC_ASSIGN_OR_RETURN(SealedPack sealed, crypter_.Seal(pack));
    Row row;
    row.cells[std::string(kValueColumn)] = PlainCell(sealed.envelope);
    row.cells[std::string(kHashColumn)] = PlainCell(sealed.hash);
    const Status s =
        cluster_->WriteIf(options_.table, EpochPartition(kMergedEpoch),
                          std::string(*pack.MinKey()), row, LwtCondition::NotExists());
    if (!s.ok() && !s.IsConditionFailed()) {
      return s;
    }
    if (s.ok() && cache_ != nullptr) {
      // Our insert was acked, so the stored envelope hash is ours. A lost
      // race (ConditionFailed) wrote identical rows under a different
      // randomized seal — never cache our hash for those.
      cache_->Put(options_.table, EpochPartition(kMergedEpoch), std::string(*pack.MinKey()),
                  std::make_shared<const Pack>(pack), sealed.hash);
    }
    OBS_COUNTER_INC("append.merge.packs_written");
    OBS_COUNTER_ADD("append.merge.keys", pack.size());
    stats_.packs_written.fetch_add(1, std::memory_order_relaxed);
    stats_.keys_merged.fetch_add(pack.size(), std::memory_order_relaxed);
    return Status::Ok();
  };
  for (auto& [key, value] : selected) {
    chunk.push_back(Pack::Entry{EncodeKey64(key), std::move(value)});
    if (chunk.size() >= options_.pack_rows) {
      MC_RETURN_IF_ERROR(flush_chunk());
    }
  }
  MC_RETURN_IF_ERROR(flush_chunk());

  // Mark MERGED (packs land in epoch 0 before the status flips, so gets never
  // lose the keys, §6.3).
  Row update;
  update.cells[std::string(kStatusColumn)] =
      PlainCell(std::string(1, static_cast<char>(EpochStatus::kMerged)));
  MC_RETURN_IF_ERROR(cluster_->Write(meta_table_, kStatsPartition, EncodeKey64(epoch), update));
  OBS_COUNTER_INC("append.merge.epochs");
  stats_.epochs_merged.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status AppendClient::MergeOnce() {
  MC_ASSIGN_OR_RETURN(auto stats_rows, cluster_->ReadRange(meta_table_, kStatsPartition,
                                                           EncodeKey64(1), EncodeKey64(~0ULL)));
  for (const auto& [clustering, row] : stats_rows) {
    auto stats = ParseStatsRow(clustering, row);
    if (!stats.ok() || stats->status != EpochStatus::kNotMerged ||
        stats->client != client_id_) {
      continue;
    }
    const Status s = MergeEpoch(stats->epoch);
    if (!s.ok() && !s.IsAborted()) {
      return s;
    }
  }
  return Status::Ok();
}

Status AppendClient::DeleteMergedOnce() {
  // An epoch e can be deleted when e is MERGED and e-1, e+1 are each MERGED
  // or DELETED (paper §6.1.4). Status is set to DELETED before the partition
  // drop so a merger never reads a half-deleted epoch (§6.3).
  MC_ASSIGN_OR_RETURN(auto stats_rows, cluster_->ReadRange(meta_table_, kStatsPartition,
                                                           EncodeKey64(1), EncodeKey64(~0ULL)));
  std::map<uint64_t, EpochStatus> status;
  for (const auto& [clustering, row] : stats_rows) {
    auto stats = ParseStatsRow(clustering, row);
    if (stats.ok()) {
      status[stats->epoch] = stats->status;
    }
  }
  auto settled = [&](uint64_t e) {
    auto it = status.find(e);
    return it == status.end() ? false
                              : it->second == EpochStatus::kMerged ||
                                    it->second == EpochStatus::kDeleted;
  };
  for (const auto& [epoch, st] : status) {
    if (st != EpochStatus::kMerged) {
      continue;
    }
    const bool prev_ok = epoch == 1 || settled(epoch - 1);
    if (!prev_ok || !settled(epoch + 1)) {
      continue;
    }
    Row update;
    update.cells[std::string(kStatusColumn)] =
        PlainCell(std::string(1, static_cast<char>(EpochStatus::kDeleted)));
    MC_RETURN_IF_ERROR(
        cluster_->Write(meta_table_, kStatsPartition, EncodeKey64(epoch), update));
    // Count the keys being dropped (for the Figure 12 series) then drop the
    // whole partition in one tombstone.
    MC_ASSIGN_OR_RETURN(auto rows, cluster_->ReadRange(options_.table, EpochPartition(epoch),
                                                       EncodeKey64(0), EncodeKey64(~0ULL)));
    MC_RETURN_IF_ERROR(cluster_->DeletePartition(options_.table, EpochPartition(epoch)));
    OBS_COUNTER_INC("append.delete.epochs");
    stats_.keys_deleted.fetch_add(rows.size(), std::memory_order_relaxed);
    stats_.epochs_deleted.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::Ok();
}

void AppendClient::Start() {
  Stop();
  heartbeat_task_ =
      std::make_unique<PeriodicTask>([this] { (void)HeartbeatOnce(); },
                                     options_.heartbeat_micros);
  merge_task_ = std::make_unique<PeriodicTask>(
      [this] {
        (void)MergeOnce();
        (void)DeleteMergedOnce();
      },
      options_.merge_period_micros);
}

void AppendClient::Stop() {
  merge_task_.reset();
  heartbeat_task_.reset();
}

}  // namespace minicrypt
