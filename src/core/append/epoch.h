// Epoch bookkeeping shared by the APPEND-mode client and the EM service
// (paper §6): partition naming, the stats/clients/EM table schemas, and the
// epoch-status enum.

#ifndef MINICRYPT_SRC_CORE_APPEND_EPOCH_H_
#define MINICRYPT_SRC_CORE_APPEND_EPOCH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/kvstore/row.h"

namespace minicrypt {

// Epoch 0 holds merged packs; raw appends go to epochs >= 1 (paper §6.1).
inline constexpr uint64_t kMergedEpoch = 0;

enum class EpochStatus : uint8_t {
  kNotMerged = 0,
  kMerged = 1,
  kDeleted = 2,
};

std::string_view EpochStatusName(EpochStatus status);

// Partition that stores an epoch's rows ("e<epoch>") within a data table.
std::string EpochPartition(uint64_t epoch);

// --- EM service schema (all ordinary rows in the underlying store, §6.1.1) ---

// stats table: one row per epoch.
//   partition "stats", clustering EncodeKey64(epoch)
//   cells: "st" status byte, "cl" assigned client id, "mk" min key (8 bytes,
//   present once the EM has observed the closed epoch's first row).
inline constexpr std::string_view kStatsPartition = "stats";
inline constexpr std::string_view kStatusColumn = "st";
inline constexpr std::string_view kClientColumn = "cl";
inline constexpr std::string_view kMinKeyColumn = "mk";

// clients table: one row per live client.
//   partition "clients", clustering = client id; cell "hb" = heartbeat micros.
inline constexpr std::string_view kClientsPartition = "clients";
inline constexpr std::string_view kHeartbeatColumn = "hb";

// EM control rows: partition "em".
//   clustering "master": cells "id" (replica id), "hb" (heartbeat micros).
//   clustering "gepoch": cells "e" (EncodeKey64 epoch), "ts" (advance micros).
inline constexpr std::string_view kEmPartition = "em";
inline constexpr std::string_view kMasterRow = "master";
inline constexpr std::string_view kGEpochRow = "gepoch";
inline constexpr std::string_view kEmIdColumn = "id";
inline constexpr std::string_view kEpochColumn = "e";
inline constexpr std::string_view kAdvanceTsColumn = "ts";

// Decoded view of one stats row.
struct EpochStats {
  uint64_t epoch = 0;
  EpochStatus status = EpochStatus::kNotMerged;
  std::string client;                 // assigned merger, may be empty
  std::optional<uint64_t> min_key;    // recorded once closed and non-empty
};

// Builds/parses stats rows.
Row MakeStatsRow(EpochStatus status, std::string_view client,
                 std::optional<uint64_t> min_key);
Result<EpochStats> ParseStatsRow(std::string_view clustering, const Row& row);

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_CORE_APPEND_EPOCH_H_
