// APPEND-mode MiniCrypt client (paper §6): puts are single-row inserts into
// the current epoch's partition (no read, no update-if — hence nearly the
// speed of the underlying store), gets probe merged packs then recent epochs,
// and a background merger folds closed epochs into packs in epoch 0.

#ifndef MINICRYPT_SRC_CORE_APPEND_APPEND_CLIENT_H_
#define MINICRYPT_SRC_CORE_APPEND_APPEND_CLIENT_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/backoff.h"
#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/thread_util.h"
#include "src/core/append/em_service.h"
#include "src/core/append/epoch.h"
#include "src/core/options.h"
#include "src/core/pack_cache.h"
#include "src/core/pack_crypter.h"
#include "src/crypto/crypto.h"
#include "src/kvstore/cluster.h"

namespace minicrypt {

struct AppendClientStats {
  std::atomic<uint64_t> puts{0};
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> get_epoch_probes{0};
  std::atomic<uint64_t> keys_merged{0};
  std::atomic<uint64_t> packs_written{0};
  std::atomic<uint64_t> epochs_merged{0};
  std::atomic<uint64_t> epochs_deleted{0};
  std::atomic<uint64_t> keys_deleted{0};
};

class AppendClient {
 public:
  // When `cache` is null and options.cache_capacity_bytes > 0, the client
  // builds a private decrypted-pack cache for its merged-pack (epoch 0)
  // reads; pass one explicitly to share it across clients.
  AppendClient(Cluster* cluster, const MiniCryptOptions& options, const SymmetricKey& key,
               std::string client_id, Clock* clock = SystemClock::Get(),
               std::shared_ptr<PackCache> cache = nullptr);
  ~AppendClient();

  // Registers the client (heartbeat row) and synchronizes c_epoch with
  // g_epoch; paper §6.1 requires a new client to sync before inserting.
  Status Register();

  // --- Data path ---------------------------------------------------------------

  // Fast append: one single-row insert under (c_epoch, key) (paper §6.1.2).
  Status Put(uint64_t key, std::string_view value);

  // Three-step read: epoch 0 packs, then epochs e and e-1 located via the
  // stats table's min keys, then one more epoch-0 attempt (paper §6.1.3).
  // Also probes the open epochs, which the stats table does not cover yet.
  Result<std::string> Get(uint64_t key);

  // Time-range query (the workload §2.3 and §8.1.2 motivate): merged packs
  // in epoch 0 plus every live raw epoch, deduplicated. Inclusive bounds.
  Result<std::vector<std::pair<uint64_t, std::string>>> GetRange(uint64_t low, uint64_t high);

  // --- Background duties (heartbeat, epoch sync, merge, delete) ----------------

  // Runs heartbeat + epoch sync + one merge/delete pass synchronously.
  // Exposed for deterministic tests; Start() loops it on a thread.
  Status HeartbeatOnce();
  Status MergeOnce();
  Status DeleteMergedOnce();

  void Start();
  void Stop();

  const AppendClientStats& stats() const { return stats_; }
  uint64_t local_epoch() const { return c_epoch_.load(std::memory_order_acquire); }
  const std::string& id() const { return client_id_; }
  const std::shared_ptr<PackCache>& pack_cache() const { return cache_; }

 private:
  // Merges one epoch this client is responsible for (paper §6.1.4).
  Status MergeEpoch(uint64_t epoch);

  // All (key, value) rows of an epoch partition, decrypted.
  Result<std::vector<std::pair<uint64_t, std::string>>> ReadEpochRows(uint64_t epoch);

  // Direct single-row probe of (epoch, key).
  Result<std::string> ProbeEpoch(uint64_t epoch, std::string_view encoded_key);

  // Pack lookup in epoch 0 (GENERIC-style floor query). With the cache on,
  // revalidates a cached pack by a version-only floor probe before serving.
  Result<std::string> ProbeMergedPacks(std::string_view encoded_key);

  // Opens a merged-pack row already in hand, reusing a cached pack when its
  // hash cell matches and filling the cache otherwise.
  Result<std::shared_ptr<const Pack>> OpenMergedPack(std::string_view pack_id, const Row& row);

  Status SyncEpoch();
  Status SyncEpochOnce();

  // Runs `op` with bounded retries on Unavailable (exponential backoff with
  // seeded jitter through clock_); other statuses return immediately.
  // Exhaustion returns Unavailable naming `what`.
  Status RetryUnavailable(const std::function<Status()>& op, std::string_view what);

  Cluster* cluster_;
  MiniCryptOptions options_;
  std::string meta_table_;
  PackCrypter crypter_;
  std::string client_id_;
  Clock* clock_;
  std::shared_ptr<PackCache> cache_;  // nullptr = caching off
  // Heartbeat/merge threads share the client with the caller's data path.
  std::mutex backoff_mu_;
  Backoff backoff_;
  std::atomic<uint64_t> c_epoch_{1};
  AppendClientStats stats_;
  std::unique_ptr<PeriodicTask> heartbeat_task_;
  std::unique_ptr<PeriodicTask> merge_task_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_CORE_APPEND_APPEND_CLIENT_H_
