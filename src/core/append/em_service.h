// The epoch-management (EM) service of APPEND mode (paper §6.1.1, §6.2).
//
// The EM is just another client of the underlying store: it keeps the global
// epoch, watches client heartbeats, assigns unmerged epochs to live clients,
// and records each closed epoch's minimum key in the stats table. Several EM
// replicas may run; they elect a master through an update-if on the EM master
// row, so a partitioned or crashed master is replaced safely — multiple
// simultaneous masters are harmless because every mutation they make is an
// update-if CAS.

#ifndef MINICRYPT_SRC_CORE_APPEND_EM_SERVICE_H_
#define MINICRYPT_SRC_CORE_APPEND_EM_SERVICE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/thread_util.h"
#include "src/core/append/epoch.h"
#include "src/core/options.h"
#include "src/kvstore/cluster.h"

namespace minicrypt {

class EmService {
 public:
  // `replica_id` must be unique among EM replicas.
  EmService(Cluster* cluster, const MiniCryptOptions& options, std::string replica_id,
            Clock* clock = SystemClock::Get());
  ~EmService();

  // Creates the meta table and seeds g_epoch = 1 (idempotent across replicas).
  Status Bootstrap();

  // One pass of the EM loop: master election / heartbeat, epoch advancement,
  // min-key recording, merger assignment. Exposed for deterministic tests;
  // Start() runs it periodically.
  Status Tick();

  void Start(uint64_t period_micros);
  void Stop();

  // Current global epoch (one read).
  Result<uint64_t> ReadGlobalEpoch();

  // True when this replica currently believes it is master.
  bool IsMaster() const { return is_master_; }

  const std::string& replica_id() const { return replica_id_; }

  // Name of the metadata table ("<data-table>.meta").
  static std::string MetaTable(const MiniCryptOptions& options);

 private:
  Status MaintainMastership(uint64_t now);
  Status AdvanceEpochIfDue(uint64_t now);
  Status RecordMinKeys(uint64_t g_epoch);
  Status AssignEpochs(uint64_t g_epoch, uint64_t now);

  Result<std::vector<std::string>> LiveClients(uint64_t now);

  Cluster* cluster_;
  MiniCryptOptions options_;
  std::string meta_table_;
  std::string replica_id_;
  Clock* clock_;
  bool is_master_ = false;
  std::unique_ptr<PeriodicTask> task_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_CORE_APPEND_EM_SERVICE_H_
