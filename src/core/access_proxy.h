// Client-side access-control proxy (paper §2.1): "the customer can add a
// proxy between the clients and the server and the proxy acts as a MiniCrypt
// client: the proxy restricts access to queries and query results".
//
// The proxy holds the tenant key; downstream application principals do not.
// Each principal is granted key ranges and a permission mask; the proxy
// executes permitted operations through its own GenericClient and filters
// range results to the principal's grants. This is complementary to
// MiniCrypt (the paper's words) — the server remains untrusted either way.

#ifndef MINICRYPT_SRC_CORE_ACCESS_PROXY_H_
#define MINICRYPT_SRC_CORE_ACCESS_PROXY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/core/generic_client.h"

namespace minicrypt {

enum class Permission : uint8_t {
  kRead = 1 << 0,
  kWrite = 1 << 1,
  kDelete = 1 << 2,
};

inline uint8_t operator|(Permission a, Permission b) {
  return static_cast<uint8_t>(static_cast<uint8_t>(a) | static_cast<uint8_t>(b));
}

struct Grant {
  uint64_t low = 0;           // inclusive key range
  uint64_t high = 0;
  uint8_t permissions = 0;    // Permission bits
};

class AccessProxy {
 public:
  // The proxy owns the only client holding the key.
  AccessProxy(Cluster* cluster, const MiniCryptOptions& options, const SymmetricKey& key);

  // Registers/extends a principal's grants. Grants are additive.
  void AddGrant(std::string_view principal, Grant grant);
  void RevokePrincipal(std::string_view principal);

  // --- Mediated API: same surface as GenericClient, plus a principal -------

  Result<std::string> Get(std::string_view principal, uint64_t key);
  Status Put(std::string_view principal, uint64_t key, std::string_view value);
  Status Delete(std::string_view principal, uint64_t key);

  // Range results are filtered to the union of the principal's readable
  // ranges, so a principal never sees keys outside its grants even when they
  // share packs with granted keys.
  Result<std::vector<std::pair<uint64_t, std::string>>> GetRange(std::string_view principal,
                                                                 uint64_t low, uint64_t high);

  GenericClient& client() { return client_; }

 private:
  // True when `principal` holds `permission` on `key`.
  bool Allowed(std::string_view principal, uint64_t key, Permission permission) const;

  GenericClient client_;
  mutable std::mutex mu_;
  std::map<std::string, std::vector<Grant>, std::less<>> grants_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_CORE_ACCESS_PROXY_H_
