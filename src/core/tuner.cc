#include "src/core/tuner.h"

#include <atomic>
#include <thread>

#include "src/common/thread_util.h"
#include "src/core/generic_client.h"

namespace minicrypt {

PackSizeTuner::PackSizeTuner(MiniCryptOptions base_options, SymmetricKey key, Config config)
    : base_options_(std::move(base_options)), key_(std::move(key)), config_(std::move(config)) {}

Result<TunerReport> PackSizeTuner::Run(
    const std::function<std::unique_ptr<Cluster>()>& make_cluster,
    const std::vector<std::pair<uint64_t, std::string>>& rows,
    const std::vector<uint64_t>& read_keys) {
  if (rows.empty() || read_keys.empty()) {
    return Status::InvalidArgument("tuner needs a dataset and a read workload");
  }
  size_t raw_bytes = 0;
  for (const auto& [key, value] : rows) {
    raw_bytes += value.size() + 8;
  }

  TunerReport report;
  double best_tp = -1.0;
  for (size_t n : config_.candidate_pack_rows) {
    std::unique_ptr<Cluster> cluster = make_cluster();
    MiniCryptOptions opts = base_options_;
    opts.pack_rows = n;
    MC_RETURN_IF_ERROR(opts.Validate());
    GenericClient loader(cluster.get(), opts, key_);
    MC_RETURN_IF_ERROR(loader.CreateTable());
    MC_RETURN_IF_ERROR(loader.BulkLoad(rows));
    MC_RETURN_IF_ERROR(cluster->FlushAll());
    // Measure warm, as the paper does (its runs warm up for 5-10 minutes).
    cluster->WarmCaches(opts.table);

    const size_t at_rest = cluster->TableAtRestBytes(opts.table);
    const double ratio =
        at_rest == 0 ? 1.0 : static_cast<double>(raw_bytes) / static_cast<double>(at_rest);

    // Measure saturated read throughput over the candidate window.
    std::atomic<uint64_t> ops{0};
    std::atomic<bool> stop{false};
    StartGate gate;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(config_.client_threads));
    for (int t = 0; t < config_.client_threads; ++t) {
      threads.emplace_back([&, t] {
        GenericClient client(cluster.get(), opts, key_);
        gate.Wait();
        size_t i = static_cast<size_t>(t);
        while (!stop.load(std::memory_order_relaxed)) {
          (void)client.Get(read_keys[i % read_keys.size()]);
          i += static_cast<size_t>(config_.client_threads);
          ops.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    const auto start = std::chrono::steady_clock::now();
    gate.Open();
    std::this_thread::sleep_for(std::chrono::microseconds(config_.run_micros));
    stop = true;
    for (auto& th : threads) {
      th.join();
    }
    const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                            .count();

    TunerPoint point;
    point.pack_rows = n;
    point.throughput_ops_s = static_cast<double>(ops.load()) / secs;
    point.compression_ratio = ratio;
    point.at_rest_bytes = at_rest;
    report.points.push_back(point);
    if (point.throughput_ops_s > best_tp) {
      best_tp = point.throughput_ops_s;
      report.best_pack_rows = n;
    }

    // Heuristic (§8.3): argmin_n { data/ratio(n) < memory }.
    const size_t budget = config_.memory_budget_bytes != 0
                              ? config_.memory_budget_bytes
                              : cluster->options().block_cache_bytes;
    if (report.heuristic_pack_rows == 0 && at_rest < budget) {
      report.heuristic_pack_rows = n;
    }
  }
  return report;
}

}  // namespace minicrypt
