#include "src/core/pack_crypter.h"

namespace minicrypt {

PackCrypter::PackCrypter(const MiniCryptOptions& options, const SymmetricKey& key)
    : codec_(FindCompressor(options.codec)),
      padding_(options.padding),
      pack_key_(key.Derive("pack:" + options.table)) {}

Result<SealedPack> PackCrypter::Seal(const Pack& pack) const {
  MC_ASSIGN_OR_RETURN(std::string compressed, codec_->Compress(pack.Serialize()));
  const std::string padded = padding_.Pad(compressed);
  MC_ASSIGN_OR_RETURN(std::string envelope, AesCbcEncrypt(pack_key_, padded));
  SealedPack out;
  out.hash = Sha256(envelope);
  out.envelope = std::move(envelope);
  return out;
}

Result<Pack> PackCrypter::Open(std::string_view envelope) const {
  MC_ASSIGN_OR_RETURN(std::string padded, AesCbcDecrypt(pack_key_, envelope));
  MC_ASSIGN_OR_RETURN(std::string compressed, PaddingTiers::Unpad(padded));
  MC_ASSIGN_OR_RETURN(std::string raw, codec_->Decompress(compressed));
  return Pack::Deserialize(raw);
}

Result<std::string> PackCrypter::SealValue(std::string_view value) const {
  MC_ASSIGN_OR_RETURN(std::string compressed, codec_->Compress(value));
  return AesCbcEncrypt(pack_key_, compressed);
}

Result<std::string> PackCrypter::OpenValue(std::string_view envelope) const {
  MC_ASSIGN_OR_RETURN(std::string compressed, AesCbcDecrypt(pack_key_, envelope));
  return codec_->Decompress(compressed);
}

}  // namespace minicrypt
