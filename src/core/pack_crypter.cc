#include "src/core/pack_crypter.h"

#include <cstring>

#include "src/obs/metrics.h"

namespace minicrypt {

namespace {

// Live compression-ratio gauge, derived from cumulative byte counters so the
// ratio converges to the run-wide value rather than the last pack's. Wire
// bytes include the padding + AES envelope, so this is the true
// bytes-on-wire vs bytes-after-decompression ratio the paper's Figure 2/9
// discussion turns on. The division happens lazily at snapshot time
// (RegisterDerivedGauge), so the per-pack hot-path cost is exactly two
// relaxed adds — no shard-summing Value() reads, no gauge read-modify-write.
struct RatioMetrics {
  Counter* raw;
  Counter* wire;

  static RatioMetrics Intern(const char* raw_name, const char* wire_name,
                             const char* gauge_name) {
    MetricsRegistry& registry = MetricsRegistry::Instance();
    Counter* raw = registry.GetCounter(raw_name);
    Counter* wire = registry.GetCounter(wire_name);
    registry.RegisterDerivedGauge(gauge_name, [raw, wire] {
      const uint64_t wire_total = wire->Value();
      return wire_total == 0 ? 0.0
                             : static_cast<double>(raw->Value()) /
                                   static_cast<double>(wire_total);
    });
    return RatioMetrics{raw, wire};
  }

  void Update(size_t raw_bytes, size_t wire_bytes) const {
    if (!MetricsRegistry::Instance().enabled()) {
      return;
    }
    raw->Add(raw_bytes);
    wire->Add(wire_bytes);
  }
};

// Envelope v2 header: magic || 8-byte big-endian key epoch. A v1 envelope
// starts with a random IV, so the 4-byte magic misclassifies a legacy
// envelope with probability 2^-32 — and even then the epoch bytes come from
// IV randomness, so the open fails closed (wrong key or KeyUnavailable),
// never silently succeeds (docs/KEY_ROTATION.md).
constexpr char kEnvelopeMagic[4] = {'M', 'C', 'E', '2'};
constexpr size_t kEnvelopeHeaderBytes = sizeof(kEnvelopeMagic) + 8;

bool HasV2Header(std::string_view envelope) {
  return envelope.size() >= kEnvelopeHeaderBytes &&
         std::memcmp(envelope.data(), kEnvelopeMagic, sizeof(kEnvelopeMagic)) == 0;
}

std::string EncodeHeader(uint64_t epoch) {
  std::string header(kEnvelopeMagic, sizeof(kEnvelopeMagic));
  for (int b = 7; b >= 0; --b) {
    header.push_back(static_cast<char>(epoch >> (8 * b)));
  }
  return header;
}

uint64_t DecodeHeaderEpoch(std::string_view envelope) {
  uint64_t epoch = 0;
  for (size_t b = 0; b < 8; ++b) {
    epoch = (epoch << 8) |
            static_cast<uint8_t>(envelope[sizeof(kEnvelopeMagic) + b]);
  }
  return epoch;
}

}  // namespace

PackCrypter::PackCrypter(const MiniCryptOptions& options, std::shared_ptr<Keyring> keyring)
    : codec_(FindCompressor(options.codec)),
      padding_(options.padding),
      table_(options.table),
      keyring_(std::move(keyring)) {}

PackCrypter::PackCrypter(const MiniCryptOptions& options, const SymmetricKey& key)
    : PackCrypter(options, Keyring::FromMaster(key)) {}

uint64_t PackCrypter::EnvelopeEpoch(std::string_view envelope) {
  return HasV2Header(envelope) ? DecodeHeaderEpoch(envelope) : 0;
}

Result<SymmetricKey> PackCrypter::PackKeyFor(uint64_t epoch) const {
  return keyring_->KeyFor(epoch, "pack:" + table_);
}

std::string PackCrypter::AadFor(uint64_t epoch, std::string_view context) const {
  // Domain prefix, then NUL-delimited table and context (stored packIDs and
  // table names never contain NUL), then the epoch — unambiguous, so no two
  // distinct (table, context, epoch) triples share an AAD encoding.
  std::string aad = "mc-aad-v1\x01";
  aad += table_;
  aad += '\0';
  aad.append(context.data(), context.size());
  aad += '\0';
  for (int b = 7; b >= 0; --b) {
    aad.push_back(static_cast<char>(epoch >> (8 * b)));
  }
  return aad;
}

Result<SealedPack> PackCrypter::Seal(const Pack& pack, std::string_view context) const {
  OBS_SPAN("pack.seal");
  // The pin is taken before reading the epoch so retirement can never win a
  // race against this seal: the drain barrier sees the pin first.
  Keyring::Pin pin = keyring_->PinCurrent();
  const uint64_t epoch = pin.epoch();
  MC_ASSIGN_OR_RETURN(const SymmetricKey pack_key, PackKeyFor(epoch));
  const std::string raw = pack.Serialize();
  std::string compressed;
  {
    OBS_SPAN("pack.compress");
    MC_ASSIGN_OR_RETURN(compressed, codec_->Compress(raw));
  }
  const std::string padded = padding_.Pad(compressed);
  std::string envelope = EncodeHeader(epoch);
  {
    OBS_SPAN("pack.encrypt");
    MC_ASSIGN_OR_RETURN(std::string body,
                        AesGcmEncrypt(pack_key, padded, AadFor(epoch, context)));
    envelope += body;
  }
  static const RatioMetrics seal_ratio =
      RatioMetrics::Intern("pack.seal.bytes_raw", "pack.seal.bytes_wire", "pack.seal.ratio");
  seal_ratio.Update(raw.size(), envelope.size());
  SealedPack out;
  out.hash = Sha256(envelope);
  out.envelope = std::move(envelope);
  out.epoch = epoch;
  out.pin = std::move(pin);
  return out;
}

Result<Pack> PackCrypter::Open(std::string_view envelope, std::string_view context) const {
  OBS_SPAN("pack.open");
  std::string padded;
  {
    OBS_SPAN("pack.decrypt");
    if (HasV2Header(envelope)) {
      const uint64_t epoch = DecodeHeaderEpoch(envelope);
      MC_ASSIGN_OR_RETURN(const SymmetricKey pack_key, PackKeyFor(epoch));
      MC_ASSIGN_OR_RETURN(padded, AesGcmDecrypt(pack_key,
                                                envelope.substr(kEnvelopeHeaderBytes),
                                                AadFor(epoch, context)));
    } else {
      // Legacy v1 envelope: epoch 0, sealed before AAD binding existed.
      MC_ASSIGN_OR_RETURN(const SymmetricKey pack_key, PackKeyFor(0));
      MC_ASSIGN_OR_RETURN(padded, AesGcmDecrypt(pack_key, envelope));
    }
  }
  MC_ASSIGN_OR_RETURN(std::string compressed, PaddingTiers::Unpad(padded));
  std::string raw;
  {
    OBS_SPAN("pack.decompress");
    MC_ASSIGN_OR_RETURN(raw, codec_->Decompress(compressed));
  }
  static const RatioMetrics open_ratio =
      RatioMetrics::Intern("pack.open.bytes_raw", "pack.open.bytes_wire", "pack.open.ratio");
  open_ratio.Update(raw.size(), envelope.size());
  // Zero-copy: the decompressed buffer moves into the pack's arena and the
  // entries slice straight into it.
  return Pack::FromSerialized(std::move(raw));
}

Result<std::string> PackCrypter::SealValue(std::string_view value) const {
  const Keyring::Pin pin = keyring_->PinCurrent();
  const uint64_t epoch = pin.epoch();
  MC_ASSIGN_OR_RETURN(const SymmetricKey pack_key, PackKeyFor(epoch));
  std::string compressed;
  {
    OBS_SPAN("pack.compress");
    MC_ASSIGN_OR_RETURN(compressed, codec_->Compress(value));
  }
  OBS_SPAN("pack.encrypt");
  std::string envelope = EncodeHeader(epoch);
  MC_ASSIGN_OR_RETURN(std::string body,
                      AesGcmEncrypt(pack_key, compressed, AadFor(epoch, {})));
  envelope += body;
  return envelope;
}

Result<std::string> PackCrypter::OpenValue(std::string_view envelope) const {
  std::string compressed;
  {
    OBS_SPAN("pack.decrypt");
    if (HasV2Header(envelope)) {
      const uint64_t epoch = DecodeHeaderEpoch(envelope);
      MC_ASSIGN_OR_RETURN(const SymmetricKey pack_key, PackKeyFor(epoch));
      MC_ASSIGN_OR_RETURN(compressed, AesGcmDecrypt(pack_key,
                                                    envelope.substr(kEnvelopeHeaderBytes),
                                                    AadFor(epoch, {})));
    } else {
      MC_ASSIGN_OR_RETURN(const SymmetricKey pack_key, PackKeyFor(0));
      MC_ASSIGN_OR_RETURN(compressed, AesGcmDecrypt(pack_key, envelope));
    }
  }
  OBS_SPAN("pack.decompress");
  return codec_->Decompress(compressed);
}

}  // namespace minicrypt
