#include "src/core/pack_crypter.h"

#include "src/obs/metrics.h"

namespace minicrypt {

namespace {

// Live compression-ratio gauge, derived from cumulative byte counters so the
// ratio converges to the run-wide value rather than the last pack's. Wire
// bytes include the padding + AES envelope, so this is the true
// bytes-on-wire vs bytes-after-decompression ratio the paper's Figure 2/9
// discussion turns on. The division happens lazily at snapshot time
// (RegisterDerivedGauge), so the per-pack hot-path cost is exactly two
// relaxed adds — no shard-summing Value() reads, no gauge read-modify-write.
struct RatioMetrics {
  Counter* raw;
  Counter* wire;

  static RatioMetrics Intern(const char* raw_name, const char* wire_name,
                             const char* gauge_name) {
    MetricsRegistry& registry = MetricsRegistry::Instance();
    Counter* raw = registry.GetCounter(raw_name);
    Counter* wire = registry.GetCounter(wire_name);
    registry.RegisterDerivedGauge(gauge_name, [raw, wire] {
      const uint64_t wire_total = wire->Value();
      return wire_total == 0 ? 0.0
                             : static_cast<double>(raw->Value()) /
                                   static_cast<double>(wire_total);
    });
    return RatioMetrics{raw, wire};
  }

  void Update(size_t raw_bytes, size_t wire_bytes) const {
    if (!MetricsRegistry::Instance().enabled()) {
      return;
    }
    raw->Add(raw_bytes);
    wire->Add(wire_bytes);
  }
};

}  // namespace

PackCrypter::PackCrypter(const MiniCryptOptions& options, const SymmetricKey& key)
    : codec_(FindCompressor(options.codec)),
      padding_(options.padding),
      pack_key_(key.Derive("pack:" + options.table)) {}

Result<SealedPack> PackCrypter::Seal(const Pack& pack) const {
  OBS_SPAN("pack.seal");
  const std::string raw = pack.Serialize();
  std::string compressed;
  {
    OBS_SPAN("pack.compress");
    MC_ASSIGN_OR_RETURN(compressed, codec_->Compress(raw));
  }
  const std::string padded = padding_.Pad(compressed);
  std::string envelope;
  {
    OBS_SPAN("pack.encrypt");
    MC_ASSIGN_OR_RETURN(envelope, AesGcmEncrypt(pack_key_, padded));
  }
  static const RatioMetrics seal_ratio =
      RatioMetrics::Intern("pack.seal.bytes_raw", "pack.seal.bytes_wire", "pack.seal.ratio");
  seal_ratio.Update(raw.size(), envelope.size());
  SealedPack out;
  out.hash = Sha256(envelope);
  out.envelope = std::move(envelope);
  return out;
}

Result<Pack> PackCrypter::Open(std::string_view envelope) const {
  OBS_SPAN("pack.open");
  std::string padded;
  {
    OBS_SPAN("pack.decrypt");
    MC_ASSIGN_OR_RETURN(padded, AesGcmDecrypt(pack_key_, envelope));
  }
  MC_ASSIGN_OR_RETURN(std::string compressed, PaddingTiers::Unpad(padded));
  std::string raw;
  {
    OBS_SPAN("pack.decompress");
    MC_ASSIGN_OR_RETURN(raw, codec_->Decompress(compressed));
  }
  static const RatioMetrics open_ratio =
      RatioMetrics::Intern("pack.open.bytes_raw", "pack.open.bytes_wire", "pack.open.ratio");
  open_ratio.Update(raw.size(), envelope.size());
  // Zero-copy: the decompressed buffer moves into the pack's arena and the
  // entries slice straight into it.
  return Pack::FromSerialized(std::move(raw));
}

Result<std::string> PackCrypter::SealValue(std::string_view value) const {
  std::string compressed;
  {
    OBS_SPAN("pack.compress");
    MC_ASSIGN_OR_RETURN(compressed, codec_->Compress(value));
  }
  OBS_SPAN("pack.encrypt");
  return AesGcmEncrypt(pack_key_, compressed);
}

Result<std::string> PackCrypter::OpenValue(std::string_view envelope) const {
  std::string compressed;
  {
    OBS_SPAN("pack.decrypt");
    MC_ASSIGN_OR_RETURN(compressed, AesGcmDecrypt(pack_key_, envelope));
  }
  OBS_SPAN("pack.decompress");
  return codec_->Decompress(compressed);
}

}  // namespace minicrypt
