#include "src/core/baseline_client.h"

#include <algorithm>

#include "src/common/coding.h"

namespace minicrypt {

namespace {

constexpr std::string_view kValueColumn = "v";

Row ValueRow(std::string value) {
  Row row;
  row.cells[std::string(kValueColumn)] = Cell{std::move(value), 0, false};
  return row;
}

Result<std::string_view> ExtractValue(const Row& row) {
  auto it = row.cells.find(kValueColumn);
  if (it == row.cells.end()) {
    return Status::Corruption("row missing value cell");
  }
  return std::string_view(it->second.value);
}

}  // namespace

EncryptedBaselineClient::EncryptedBaselineClient(Cluster* cluster,
                                                 const MiniCryptOptions& options,
                                                 const SymmetricKey& key)
    : cluster_(cluster), options_(options), crypter_(options, key) {}

Status EncryptedBaselineClient::CreateTable() {
  // Encrypted rows do not compress at rest; skip server compression.
  return cluster_->CreateTable(options_.table, /*server_compression=*/false);
}

Result<std::string> EncryptedBaselineClient::Get(uint64_t key) {
  const std::string encoded = EncodeKey64(key);
  const std::string partition = PartitionForKey(encoded, options_.hash_partitions);
  MC_ASSIGN_OR_RETURN(Row row, cluster_->Read(options_.table, partition, encoded));
  MC_ASSIGN_OR_RETURN(std::string_view envelope, ExtractValue(row));
  return crypter_.OpenValue(envelope);
}

Status EncryptedBaselineClient::Put(uint64_t key, std::string_view value) {
  const std::string encoded = EncodeKey64(key);
  const std::string partition = PartitionForKey(encoded, options_.hash_partitions);
  MC_ASSIGN_OR_RETURN(std::string envelope, crypter_.SealValue(value));
  // Blind write — the baseline needs no read-modify-write (paper §8.2).
  return cluster_->Write(options_.table, partition, encoded, ValueRow(std::move(envelope)));
}

Result<std::vector<std::pair<uint64_t, std::string>>> EncryptedBaselineClient::GetRange(
    uint64_t low, uint64_t high) {
  const std::string klo = EncodeKey64(low);
  const std::string khi = EncodeKey64(high);
  std::vector<std::pair<uint64_t, std::string>> out;
  for (int p = 0; p < options_.hash_partitions; ++p) {
    MC_ASSIGN_OR_RETURN(auto rows,
                        cluster_->ReadRange(options_.table, PartitionLabel(p), klo, khi));
    for (auto& [clustering, row] : rows) {
      MC_ASSIGN_OR_RETURN(std::string_view envelope, ExtractValue(row));
      MC_ASSIGN_OR_RETURN(std::string value, crypter_.OpenValue(envelope));
      MC_ASSIGN_OR_RETURN(uint64_t key, DecodeKey64(clustering));
      out.emplace_back(key, std::move(value));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

Status EncryptedBaselineClient::BulkLoad(
    const std::vector<std::pair<uint64_t, std::string>>& rows) {
  for (const auto& [key, value] : rows) {
    MC_RETURN_IF_ERROR(Put(key, value));
  }
  return Status::Ok();
}

VanillaClient::VanillaClient(Cluster* cluster, const MiniCryptOptions& options)
    : cluster_(cluster), options_(options) {}

Status VanillaClient::CreateTable() {
  // Plaintext values: the server compresses blocks at rest, like Cassandra.
  return cluster_->CreateTable(options_.table, /*server_compression=*/true);
}

Result<std::string> VanillaClient::Get(uint64_t key) {
  const std::string encoded = EncodeKey64(key);
  const std::string partition = PartitionForKey(encoded, options_.hash_partitions);
  MC_ASSIGN_OR_RETURN(Row row, cluster_->Read(options_.table, partition, encoded));
  MC_ASSIGN_OR_RETURN(std::string_view value, ExtractValue(row));
  return std::string(value);
}

Status VanillaClient::Put(uint64_t key, std::string_view value) {
  const std::string encoded = EncodeKey64(key);
  const std::string partition = PartitionForKey(encoded, options_.hash_partitions);
  return cluster_->Write(options_.table, partition, encoded, ValueRow(std::string(value)));
}

Result<std::vector<std::pair<uint64_t, std::string>>> VanillaClient::GetRange(uint64_t low,
                                                                              uint64_t high) {
  const std::string klo = EncodeKey64(low);
  const std::string khi = EncodeKey64(high);
  std::vector<std::pair<uint64_t, std::string>> out;
  for (int p = 0; p < options_.hash_partitions; ++p) {
    MC_ASSIGN_OR_RETURN(auto rows,
                        cluster_->ReadRange(options_.table, PartitionLabel(p), klo, khi));
    for (auto& [clustering, row] : rows) {
      MC_ASSIGN_OR_RETURN(std::string_view value, ExtractValue(row));
      MC_ASSIGN_OR_RETURN(uint64_t key, DecodeKey64(clustering));
      out.emplace_back(key, std::string(value));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

Status VanillaClient::BulkLoad(const std::vector<std::pair<uint64_t, std::string>>& rows) {
  for (const auto& [key, value] : rows) {
    MC_RETURN_IF_ERROR(Put(key, value));
  }
  return Status::Ok();
}

}  // namespace minicrypt
