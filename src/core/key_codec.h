// Key handling: order-preserving encodings, hash-partition assignment
// (paper §7: part_key = SHA256(key) mod N), and the deterministic packID
// cipher for sensitive keys (paper §2.5).

#ifndef MINICRYPT_SRC_CORE_KEY_CODEC_H_
#define MINICRYPT_SRC_CORE_KEY_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/core/options.h"
#include "src/crypto/crypto.h"

namespace minicrypt {

// Partition label ("p0".."p{N-1}") for a key, via SHA-256(key) mod N.
std::string PartitionForKey(std::string_view encoded_key, int hash_partitions);

// Partition label for an explicit partition id (range queries fan out over
// all of them).
std::string PartitionLabel(int partition);

// Deterministic packID encryption (paper §2.5): an HMAC-SHA256 PRF keyed per
// table. Because keys in a key-value store are unique, determinism is as good
// as randomized encryption here, but order is destroyed — so lookup must use
// static buckets and range queries/APPEND mode are unsupported in this mode.
class PackIdCipher {
 public:
  PackIdCipher(const MiniCryptOptions& options, const SymmetricKey& key);

  // PRF image of a bucket id; used as the stored packID.
  std::string EncryptBucket(uint64_t bucket) const;

  // Bucket id that covers `key` under the static-bucket layout.
  uint64_t BucketFor(uint64_t key) const { return key / bucket_width_; }

  uint64_t bucket_width() const { return bucket_width_; }

 private:
  SymmetricKey prf_key_;
  uint64_t bucket_width_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_CORE_KEY_CODEC_H_
