#include "src/workload/driver.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/common/thread_util.h"

namespace minicrypt {

DriverResult RunClosedLoop(const DriverConfig& config,
                           const std::function<bool(int thread, uint64_t index)>& op) {
  std::atomic<bool> stop{false};
  std::atomic<bool> measuring{false};
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> errors{0};
  StartGate gate;

  std::vector<Histogram> histograms(static_cast<size_t>(config.threads));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(config.threads));
  for (int t = 0; t < config.threads; ++t) {
    threads.emplace_back([&, t] {
      gate.Wait();
      uint64_t index = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto begin = std::chrono::steady_clock::now();
        const bool ok = op(t, index++);
        const auto end = std::chrono::steady_clock::now();
        if (measuring.load(std::memory_order_relaxed)) {
          const auto micros =
              std::chrono::duration_cast<std::chrono::microseconds>(end - begin).count();
          histograms[static_cast<size_t>(t)].Add(static_cast<uint64_t>(micros));
          ops.fetch_add(1, std::memory_order_relaxed);
          if (!ok) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  gate.Open();
  if (config.warmup_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(config.warmup_micros));
  }
  measuring = true;
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::microseconds(config.run_micros));
  stop = true;
  const auto finish = std::chrono::steady_clock::now();
  for (auto& th : threads) {
    th.join();
  }

  DriverResult result;
  result.elapsed_s = std::chrono::duration<double>(finish - start).count();
  result.total_ops = ops.load();
  result.errors = errors.load();
  result.throughput_ops_s =
      result.elapsed_s > 0 ? static_cast<double>(result.total_ops) / result.elapsed_s : 0.0;
  for (const auto& h : histograms) {
    result.latency.Merge(h);
  }
  return result;
}

}  // namespace minicrypt
