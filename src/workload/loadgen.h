// Open-loop (YCSB-style) load generator for the async cluster API.
//
// Closed-loop drivers (driver.h) hide overload: a slow server throttles its
// own clients, so measured latency stays flat while offered load silently
// drops — the coordinated-omission trap. This generator instead simulates
// `clients` independent Poisson clients by merging them into one aggregate
// arrival process (the superposition of N Poisson streams at rate r is one
// Poisson stream at rate N*r), issues each operation through the cluster's
// Async* entry points at its scheduled arrival time, and measures latency
// from the *scheduled* arrival — not from when the dispatcher got around to
// issuing it. Queueing delay anywhere (dispatcher behind schedule, executor
// queue, replica fan-out) therefore lands in the histogram, which is what
// makes p999 meaningful. See docs/LOAD_TESTING.md.

#ifndef MINICRYPT_SRC_WORKLOAD_LOADGEN_H_
#define MINICRYPT_SRC_WORKLOAD_LOADGEN_H_

#include <cstdint>
#include <string>

#include "src/common/histogram.h"
#include "src/kvstore/cluster.h"

namespace minicrypt {

struct LoadGenOptions {
  // Simulated open-loop clients and the per-client think rate. The aggregate
  // offered load is clients * per_client_ops_s, independent of how fast the
  // server answers.
  int clients = 1000;
  double per_client_ops_s = 20.0;

  uint64_t duration_micros = 2'000'000;
  // Arrivals in the first `warmup_micros` are issued but not recorded.
  uint64_t warmup_micros = 0;

  // Op mix: reads are ReadFloorCell probes, ranges are bounded GetRange
  // scans, the rest are single-row mutations.
  double read_fraction = 0.70;
  double range_fraction = 0.05;
  size_t range_limit = 16;

  // Keys are uniform over [0, keyspace), spread over `partitions` ring
  // partitions. The harness preloads the same layout.
  uint64_t keyspace = 10'000;
  uint64_t partitions = 64;
  size_t value_bytes = 128;

  // Dispatcher threads sharing the aggregate arrival stream. Each runs an
  // independent Poisson process at rate/dispatchers (their superposition is
  // the aggregate process), so dispatch itself never serializes.
  int dispatchers = 4;

  uint64_t seed = 1;
  std::string table = "load";
};

struct LoadGenResult {
  // Measured-window arrivals and their outcomes (ok + errors == offered once
  // every callback has fired).
  uint64_t offered = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;    // non-ok completions, including rejections
  uint64_t rejected = 0;  // bounded-admission rejections (cluster.async.rejected delta)
  bool drained = true;    // false: timed out waiting for straggler callbacks

  double elapsed_s = 0.0;
  double goodput_ops_s = 0.0;  // ok / elapsed — completed work, not offered

  // Latency from scheduled arrival to completion callback, microseconds.
  Histogram latency;        // all recorded ops
  Histogram read_latency;   // ReadFloorCell probes
  Histogram write_latency;  // mutations
  Histogram range_latency;  // range scans

  double P50Micros() const { return latency.Percentile(0.50); }
  double P99Micros() const { return latency.Percentile(0.99); }
  double P999Micros() const { return latency.Percentile(0.999); }
};

// Runs the open-loop schedule against `cluster` (the table must exist and be
// preloaded with options.keyspace keys in the documented layout — see
// LoadKeyParts). Blocks until the window has elapsed and every issued
// operation's callback has fired (or a drain timeout expires).
LoadGenResult RunOpenLoop(Cluster& cluster, const LoadGenOptions& options);

// Key layout shared by the generator and the preload path: key k lives in
// partition "lp<k % partitions>" at clustering "k<k padded to 12 digits>".
std::string LoadPartitionFor(uint64_t key, uint64_t partitions);
std::string LoadClusteringFor(uint64_t key);

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_WORKLOAD_LOADGEN_H_
