#include "src/workload/loadgen.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/obs/metrics.h"

namespace minicrypt {

namespace {

using SteadyClock = std::chrono::steady_clock;

uint64_t MicrosBetween(SteadyClock::time_point a, SteadyClock::time_point b) {
  return b <= a ? 0
               : static_cast<uint64_t>(
                     std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

enum class OpClass { kRead, kWrite, kRange };

// Completion state shared with every in-flight callback. Held by shared_ptr
// so a straggler completing after RunOpenLoop gave up on the drain timeout
// still writes into live memory.
struct Completions {
  static constexpr size_t kShards = 16;
  struct Shard {
    std::mutex mu;
    Histogram all;
    Histogram read;
    Histogram write;
    Histogram range;
  };
  std::array<Shard, kShards> shards;

  std::mutex mu;
  std::condition_variable cv;
  uint64_t done = 0;  // every issued op, measured or not
  uint64_t measured_ok = 0;
  uint64_t measured_errors = 0;

  void Complete(OpClass cls, uint64_t latency_micros, bool measured, bool ok, size_t shard_idx,
                uint64_t issued_so_far) {
    if (measured) {
      OBS_HISTOGRAM_RECORD("loadgen.latency", latency_micros);
      Shard& shard = shards[shard_idx % kShards];
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.all.Add(latency_micros);
      switch (cls) {
        case OpClass::kRead:
          shard.read.Add(latency_micros);
          break;
        case OpClass::kWrite:
          shard.write.Add(latency_micros);
          break;
        case OpClass::kRange:
          shard.range.Add(latency_micros);
          break;
      }
    }
    OBS_COUNTER_INC("loadgen.completed");
    if (!ok) {
      OBS_COUNTER_INC("loadgen.errors");
    }
    uint64_t now_done;
    {
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      now_done = done;
      if (measured) {
        ok ? ++measured_ok : ++measured_errors;
      }
    }
    // Backlog is approximate (issued_so_far is the dispatcher-local view at
    // issue time); good enough for an overload gauge.
    OBS_GAUGE_SET("loadgen.backlog",
                  static_cast<int64_t>(issued_so_far > now_done ? issued_so_far - now_done : 0));
    cv.notify_all();
  }
};

}  // namespace

std::string LoadPartitionFor(uint64_t key, uint64_t partitions) {
  return "lp" + std::to_string(partitions == 0 ? 0 : key % partitions);
}

std::string LoadClusteringFor(uint64_t key) {
  std::string digits = std::to_string(key);
  std::string out = "k";
  out.append(digits.size() < 12 ? 12 - digits.size() : 0, '0');
  out.append(digits);
  return out;
}

LoadGenResult RunOpenLoop(Cluster& cluster, const LoadGenOptions& options) {
  LoadGenResult result;
  const int dispatchers = std::max(1, options.dispatchers);
  const double aggregate_ops_s =
      std::max(1.0, static_cast<double>(options.clients) * options.per_client_ops_s);
  const double per_dispatcher_ops_us = aggregate_ops_s / 1e6 / dispatchers;

  auto completions = std::make_shared<Completions>();
  std::atomic<uint64_t> issued{0};
  std::atomic<uint64_t> offered{0};

  Counter* rejected_counter = MetricsRegistry::Instance().GetCounter("cluster.async.rejected");
  const uint64_t rejected_before = rejected_counter->Value();

  const SteadyClock::time_point start = SteadyClock::now();
  const SteadyClock::time_point measured_start =
      start + std::chrono::microseconds(options.warmup_micros);
  const SteadyClock::time_point end =
      measured_start + std::chrono::microseconds(options.duration_micros);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(dispatchers));
  for (int d = 0; d < dispatchers; ++d) {
    threads.emplace_back([&, d]() {
      Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(d) + 1);
      const std::string value(options.value_bytes, 'v');
      SteadyClock::time_point next = start;
      for (;;) {
        // Exponential inter-arrival gap of this dispatcher's Poisson slice.
        // The schedule is absolute: falling behind never stretches it — late
        // issues simply carry their queueing delay into the histogram.
        const double u = std::max(1e-12, 1.0 - rng.NextDouble());
        const double gap_us = -std::log(u) / per_dispatcher_ops_us;
        next += std::chrono::microseconds(static_cast<uint64_t>(gap_us));
        if (next >= end) {
          return;
        }
        if (SteadyClock::now() < next) {
          std::this_thread::sleep_until(next);
        }
        const bool measured = next >= measured_start;
        const double cls_draw = rng.NextDouble();
        const OpClass cls = cls_draw < options.read_fraction ? OpClass::kRead
                            : cls_draw < options.read_fraction + options.range_fraction
                                ? OpClass::kRange
                                : OpClass::kWrite;
        const uint64_t key = rng.Uniform(std::max<uint64_t>(1, options.keyspace));
        const std::string partition = LoadPartitionFor(key, options.partitions);
        const std::string clustering = LoadClusteringFor(key);

        OBS_COUNTER_INC("loadgen.arrivals");
        const uint64_t issue_count = issued.fetch_add(1, std::memory_order_relaxed) + 1;
        if (measured) {
          offered.fetch_add(1, std::memory_order_relaxed);
        }
        const SteadyClock::time_point scheduled = next;
        auto finish = [completions, cls, measured, scheduled, issue_count](bool ok) {
          completions->Complete(cls, MicrosBetween(scheduled, SteadyClock::now()), measured, ok,
                                static_cast<size_t>(issue_count), issue_count);
        };
        switch (cls) {
          case OpClass::kRead:
            cluster.AsyncReadFloorCell(
                options.table, partition, clustering, "v",
                [finish](Result<std::pair<std::string, std::string>> r) { finish(r.ok()); });
            break;
          case OpClass::kRange:
            cluster.AsyncGetRange(
                options.table, partition, clustering, std::string(13, '\xff'),
                options.range_limit,
                [finish](Result<std::vector<std::pair<std::string, Row>>> r) {
                  // An empty range is a valid answer; only transport-level
                  // failures count as errors.
                  finish(r.ok() || r.status().IsNotFound());
                });
            break;
          case OpClass::kWrite: {
            Row update;
            update.cells["v"] = Cell{value, 0, false};
            cluster.AsyncMutate(options.table, partition, clustering, update,
                                [finish](Status s) { finish(s.ok()); });
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  // Drain: every callback fires exactly once (rejections fire inline), so
  // done converges to issued unless the cluster wedges — bound the wait so a
  // harness bug fails loudly instead of hanging CI.
  const uint64_t total_issued = issued.load(std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> lock(completions->mu);
    result.drained = completions->cv.wait_for(lock, std::chrono::seconds(60), [&]() {
      return completions->done >= total_issued;
    });
  }
  const SteadyClock::time_point drained_at = SteadyClock::now();

  for (Completions::Shard& shard : completions->shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    result.latency.Merge(shard.all);
    result.read_latency.Merge(shard.read);
    result.write_latency.Merge(shard.write);
    result.range_latency.Merge(shard.range);
  }
  {
    std::lock_guard<std::mutex> lock(completions->mu);
    result.ok = completions->measured_ok;
    result.errors = completions->measured_errors;
  }
  result.offered = offered.load(std::memory_order_relaxed);
  result.rejected = rejected_counter->Value() - rejected_before;
  // Goodput over the measured window plus drain tail: completed work per
  // wall-clock second actually spent.
  result.elapsed_s =
      static_cast<double>(MicrosBetween(measured_start, drained_at)) / 1e6;
  result.goodput_ops_s =
      result.elapsed_s > 0 ? static_cast<double>(result.ok) / result.elapsed_s : 0.0;
  return result;
}

}  // namespace minicrypt
