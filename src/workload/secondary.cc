#include "src/workload/secondary.h"

#include <algorithm>

#include "src/common/random.h"
#include "src/index/indexed_value.h"

namespace minicrypt {

namespace {

// splitmix64 finalizer: a cheap, statistically solid 64-bit mixer, so each
// row's attribute draw is independent of its key without materializing an Rng
// per row.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

SecondaryWorkload::SecondaryWorkload(SecondaryWorkloadOptions options)
    : options_(options),
      attr_domain_(options.attr_domain != 0 ? options.attr_domain
                                            : (options.row_count > 0 ? options.row_count : 1)) {
  const double span = options_.range_selectivity * static_cast<double>(attr_domain_);
  range_span_ = span < 1.0 ? 1 : static_cast<uint64_t>(span);
  if (range_span_ > attr_domain_) {
    range_span_ = attr_domain_;
  }
}

uint64_t SecondaryWorkload::AttrFor(uint64_t key) const {
  return Mix64(key ^ Mix64(options_.seed)) % attr_domain_;
}

std::string SecondaryWorkload::ValueFor(uint64_t key) const {
  Rng rng(Mix64(options_.seed ^ 0x5eca11ull) ^ key);
  return EncodeIndexedValue(AttrFor(key), rng.AlphaString(options_.payload_bytes));
}

std::vector<std::pair<uint64_t, std::string>> SecondaryWorkload::MaterializeRows() const {
  std::vector<std::pair<uint64_t, std::string>> rows;
  rows.reserve(options_.row_count);
  for (uint64_t k = 0; k < options_.row_count; ++k) {
    rows.emplace_back(k, ValueFor(k));
  }
  return rows;
}

std::pair<uint64_t, uint64_t> SecondaryWorkload::RangeFor(uint64_t index) const {
  const uint64_t starts = attr_domain_ > range_span_ ? attr_domain_ - range_span_ + 1 : 1;
  const uint64_t lo = Mix64(options_.seed ^ (index * 0x2545f4914f6cdd1dull + 0xabcd)) % starts;
  return {lo, lo + range_span_ - 1};
}

std::vector<uint64_t> SecondaryWorkload::OracleRange(uint64_t lo, uint64_t hi) const {
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < options_.row_count; ++k) {
    const uint64_t attr = AttrFor(k);
    if (attr >= lo && attr <= hi) {
      keys.push_back(k);
    }
  }
  return keys;  // ascending by construction
}

}  // namespace minicrypt
