// YCSB-style workload descriptors (the paper's benchmarks are modified YCSB
// workloads, §8): key choosers over a keyspace (uniform, zipfian, latest
// window) and operation mixes.

#ifndef MINICRYPT_SRC_WORKLOAD_YCSB_H_
#define MINICRYPT_SRC_WORKLOAD_YCSB_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/common/random.h"

namespace minicrypt {

// Chooses the next key to operate on. One chooser per client thread.
class KeyChooser {
 public:
  virtual ~KeyChooser() = default;
  virtual uint64_t Next() = 0;
};

class UniformChooser : public KeyChooser {
 public:
  UniformChooser(uint64_t keyspace, uint64_t seed) : rng_(seed), keyspace_(keyspace) {}
  uint64_t Next() override { return rng_.Uniform(keyspace_); }

 private:
  Rng rng_;
  uint64_t keyspace_;
};

// The paper's Figure 10 skew knob: "Zipfian parameter 0.2, with 0 being pure
// Zipfian and 1 being uniformly random". We map that knob to YCSB's theta:
// theta = 0.99 * (1 - knob), so knob 0 -> theta 0.99 (YCSB's default "pure"
// zipfian) and knob 1 -> theta ~0 (uniform).
class ZipfianChooser : public KeyChooser {
 public:
  ZipfianChooser(uint64_t keyspace, double knob, uint64_t seed)
      : gen_(keyspace, 0.99 * (1.0 - knob) + 1e-6, seed) {}
  uint64_t Next() override { return gen_.Next(); }

 private:
  ZipfianGenerator gen_;
};

// "Read most recent": keys uniform over the trailing `window` of a monotonic
// frontier that the writers advance (paper Figure 13's "interval" knob).
class LatestWindowChooser : public KeyChooser {
 public:
  LatestWindowChooser(const std::atomic<uint64_t>* frontier, uint64_t window, uint64_t seed)
      : frontier_(frontier), window_(window), rng_(seed) {}

  uint64_t Next() override {
    const uint64_t hi = frontier_->load(std::memory_order_relaxed);
    const uint64_t lo = hi > window_ ? hi - window_ : 0;
    return lo + rng_.Uniform(hi > lo ? hi - lo : 1);
  }

 private:
  const std::atomic<uint64_t>* frontier_;
  uint64_t window_;
  Rng rng_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_WORKLOAD_YCSB_H_
