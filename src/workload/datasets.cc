#include "src/workload/datasets.h"

#include <array>
#include <cmath>
#include <cstdio>

#include "src/common/random.h"

namespace minicrypt {

namespace {

// Small word pools used to synthesize plausible field values. Invented names;
// what matters is pool size (distinct-value cardinality drives cross-row
// redundancy).
constexpr std::array<std::string_view, 24> kCities = {
    "sanfrancisco", "newyork",   "london",   "berlin",   "tokyo",    "sydney",
    "toronto",      "saopaulo",  "mumbai",   "seoul",    "paris",    "madrid",
    "amsterdam",    "stockholm", "dublin",   "zurich",   "singapore", "taipei",
    "oslo",         "helsinki",  "vienna",   "prague",   "warsaw",   "lisbon"};

constexpr std::array<std::string_view, 12> kIsps = {
    "comstar",  "vectranet", "bluelink", "skyfiber", "metrotel", "quantanet",
    "airwave",  "gridcom",   "novatel",  "pulsenet", "coreline", "zenbroad"};

constexpr std::array<std::string_view, 10> kDevices = {
    "roku3",    "appletv",  "chromecast", "firetv",  "smarttv-lg",
    "xbox-one", "ps4",      "ipad-air",   "android-tablet", "desktop-web"};

constexpr std::array<std::string_view, 8> kCdns = {
    "cdn-akora", "cdn-lumen", "cdn-fastly2", "cdn-edgecloud",
    "cdn-nimbus", "cdn-strata", "cdn-veloce", "cdn-apex"};

constexpr std::array<std::string_view, 6> kPlayerStates = {
    "playing", "buffering", "paused", "joining", "stopped", "error"};

// Generic word pool for text-like datasets (wiki, twitter). Frequencies are
// zipf-ranked by index.
constexpr std::array<std::string_view, 96> kWords = {
    "the",      "of",       "and",      "to",        "in",       "a",
    "is",       "that",     "for",      "it",        "as",       "was",
    "with",     "be",       "by",       "on",        "not",      "he",
    "this",     "are",      "or",       "his",       "from",     "at",
    "which",    "but",      "have",     "an",        "had",      "they",
    "you",      "were",     "their",    "one",       "all",      "we",
    "can",      "her",      "has",      "there",     "been",     "if",
    "more",     "when",     "will",     "would",     "who",      "so",
    "no",       "she",      "other",    "its",       "may",      "these",
    "what",     "them",     "than",     "some",      "him",      "time",
    "into",     "only",     "could",    "new",       "two",      "our",
    "system",   "data",     "network",  "process",   "memory",   "value",
    "result",   "number",   "function", "table",     "server",   "client",
    "storage",  "record",   "update",   "query",     "index",    "field",
    "stream",   "packet",   "buffer",   "thread",    "signal",   "sensor",
    "energy",   "measure",  "history",  "century",   "region",   "science"};

constexpr std::array<std::string_view, 16> kCKeywords = {
    "static", "int", "return", "if", "else", "for", "while", "struct",
    "void",   "char", "const", "unsigned", "break", "case", "switch", "sizeof"};

uint64_t RowSeed(uint64_t dataset_seed, uint64_t index) {
  uint64_t h = dataset_seed ^ (index * 0x9e3779b97f4a7c15ULL);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}

void AppendZipfWord(std::string* out, Rng* rng) {
  // Quadratic skew toward low indices approximates a zipfian word mix.
  const double u = rng->NextDouble();
  const auto idx = static_cast<size_t>(u * u * static_cast<double>(kWords.size()));
  out->append(kWords[std::min(idx, kWords.size() - 1)]);
}

// --- Conviva-like session log -------------------------------------------------

class ConvivaLike : public Dataset {
 public:
  explicit ConvivaLike(uint64_t seed) : seed_(seed) {}
  std::string_view Name() const override { return "conviva"; }
  size_t ApproxRowBytes() const override { return 1100; }

  std::string Row(uint64_t index) const override {
    Rng rng(RowSeed(seed_, index));
    std::string out;
    out.reserve(1200);
    char buf[160];
    // Session header: ids are high-entropy (this is what limits single-row
    // compression to ~1.6), field names and dictionary values are shared
    // across rows (this is what packs recover).
    std::snprintf(buf, sizeof(buf),
                  "session_id=%016llx viewer_id=%012llx asset_id=vod-%06llu ",
                  static_cast<unsigned long long>(rng.Next()),
                  static_cast<unsigned long long>(rng.Next() & 0xFFFFFFFFFFFFull),
                  static_cast<unsigned long long>(rng.Uniform(250000)));
    out += buf;
    std::snprintf(buf, sizeof(buf), "ts=%llu city=%s isp=%s device=%s cdn=%s state=%s ",
                  static_cast<unsigned long long>(1490000000000ull + index * 40 + rng.Uniform(40)),
                  kCities[rng.Uniform(kCities.size())].data(),
                  kIsps[rng.Uniform(kIsps.size())].data(),
                  kDevices[rng.Uniform(kDevices.size())].data(),
                  kCdns[rng.Uniform(kCdns.size())].data(),
                  kPlayerStates[rng.Uniform(kPlayerStates.size())].data());
    out += buf;
    // High-entropy auth token (~12% of the row): incompressible alone or in
    // packs, which keeps single-row ratio near the paper's ~1.6 and the pack
    // ratio from exceeding the paper's ~4.5 plateau.
    out += "token=";
    const std::string token_bytes = rng.Bytes(48);
    for (unsigned char c : token_bytes) {
      std::snprintf(buf, sizeof(buf), "%02x", c);
      out += buf;
    }
    out.push_back(' ');
    // Flat QoS metric list: ~40 distinct field names. Names repeat *across*
    // rows (pack-compressible) but not within one row.
    static constexpr std::array<std::string_view, 40> kMetrics = {
        "abr_bitrate_kbps",   "startup_delay_ms",  "rebuffer_count",   "rebuffer_ratio_pct",
        "join_time_ms",       "frames_dropped",    "frames_rendered",  "avg_fps",
        "bandwidth_est_kbps", "cdn_rtt_ms",        "dns_time_ms",      "tcp_connect_ms",
        "tls_handshake_ms",   "first_byte_ms",     "manifest_time_ms", "segment_count",
        "segment_errors",     "bitrate_switches",  "upshift_count",    "downshift_count",
        "play_duration_s",    "pause_count",       "seek_count",       "seek_latency_ms",
        "ad_count",           "ad_duration_s",     "ad_errors",        "exit_before_start",
        "vst_ms",             "buffer_health_ms",  "audio_bitrate",    "video_width",
        "video_height",       "decoder_errors",    "drm_time_ms",      "license_time_ms",
        "player_version",     "sdk_version",       "os_build",         "session_seq"};
    // Fractional measurements: high-cardinality (dictionary-encoding-hostile,
    // like the real Conviva columns, §2.4). Values drift slowly with the row
    // index — adjacent sessions see similar network conditions — so packs of
    // nearby rows share most digit prefixes and compress well.
    int metric_index = 0;
    for (const std::string_view metric : kMetrics) {
      const double base =
          250.0 * metric_index +
          40.0 * std::sin(static_cast<double>(index) / 700.0 + metric_index);
      const double noise = static_cast<double>(rng.Uniform(300)) / 100.0;
      std::snprintf(buf, sizeof(buf), "%s=%.2f ", metric.data(), base + noise);
      out += buf;
      ++metric_index;
    }
    std::snprintf(buf, sizeof(buf), "exit=%s play_ms=%llu",
                  kPlayerStates[rng.Uniform(kPlayerStates.size())].data(),
                  static_cast<unsigned long long>(rng.Uniform(3600000)));
    out += buf;
    return out;
  }

 private:
  uint64_t seed_;
};

// --- Genomics-like -------------------------------------------------------------

class GenomicsLike : public Dataset {
 public:
  explicit GenomicsLike(uint64_t seed) : seed_(seed) {}
  std::string_view Name() const override { return "genomics"; }
  size_t ApproxRowBytes() const override { return 600; }

  std::string Row(uint64_t index) const override {
    Rng rng(RowSeed(seed_, index));
    std::string out;
    out.reserve(640);
    char buf[96];
    std::snprintf(buf, sizeof(buf), ">read|chr%llu|pos=%llu|q=%llu\n",
                  static_cast<unsigned long long>(1 + rng.Uniform(22)),
                  static_cast<unsigned long long>(rng.Uniform(240000000)),
                  static_cast<unsigned long long>(20 + rng.Uniform(20)));
    out += buf;
    // 2-bit alphabet with repeated motifs (real genomes are far from iid).
    static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
    std::string motif;
    for (int i = 0; i < 12; ++i) {
      motif.push_back(kBases[rng.Uniform(4)]);
    }
    while (out.size() < 580) {
      if (rng.Bernoulli(0.35)) {
        out += motif;  // repeat region
      } else {
        for (int i = 0; i < 16; ++i) {
          out.push_back(kBases[rng.Uniform(4)]);
        }
      }
    }
    return out;
  }

 private:
  uint64_t seed_;
};

// --- Twitter-like JSON ----------------------------------------------------------

class TwitterLike : public Dataset {
 public:
  explicit TwitterLike(uint64_t seed) : seed_(seed) {}
  std::string_view Name() const override { return "twitter"; }
  size_t ApproxRowBytes() const override { return 700; }

  std::string Row(uint64_t index) const override {
    Rng rng(RowSeed(seed_, index));
    std::string out;
    out.reserve(760);
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "{\"id\":%llu,\"created_at\":\"2016-11-%02llu 12:%02llu:%02llu\","
                  "\"user\":{\"id\":%llu,\"followers\":%llu,\"lang\":\"en\","
                  "\"verified\":%s},\"retweets\":%llu,\"favorites\":%llu,\"text\":\"",
                  static_cast<unsigned long long>(780000000000000000ull + index),
                  static_cast<unsigned long long>(1 + rng.Uniform(28)),
                  static_cast<unsigned long long>(rng.Uniform(60)),
                  static_cast<unsigned long long>(rng.Uniform(60)),
                  static_cast<unsigned long long>(rng.Uniform(400000000)),
                  static_cast<unsigned long long>(rng.Uniform(100000)),
                  rng.Bernoulli(0.02) ? "true" : "false",
                  static_cast<unsigned long long>(rng.Uniform(50)),
                  static_cast<unsigned long long>(rng.Uniform(200)));
    out += buf;
    const size_t words = 12 + rng.Uniform(18);
    for (size_t w = 0; w < words; ++w) {
      AppendZipfWord(&out, &rng);
      out.push_back(' ');
    }
    out += "\",\"entities\":{\"hashtags\":[\"";
    AppendZipfWord(&out, &rng);
    out += "\"],\"urls\":[],\"mentions\":[]},\"source\":\"";
    out += kDevices[rng.Uniform(kDevices.size())];
    out += "\",\"geo\":null,\"place\":\"";
    out += kCities[rng.Uniform(kCities.size())];
    out += "\"}";
    return out;
  }

 private:
  uint64_t seed_;
};

// --- Gas-sensor time series ------------------------------------------------------

class GasSensorLike : public Dataset {
 public:
  explicit GasSensorLike(uint64_t seed) : seed_(seed) {}
  std::string_view Name() const override { return "gas"; }
  size_t ApproxRowBytes() const override { return 150; }

  std::string Row(uint64_t index) const override {
    Rng rng(RowSeed(seed_, index));
    std::string out;
    out.reserve(360);
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(1420070400 + index));
    out += buf;
    // 16 channels whose baseline drifts slowly with the row index, with small
    // per-sample noise — adjacent rows are highly similar (pack-friendly).
    for (int ch = 0; ch < 16; ++ch) {
      const double base =
          600.0 + 120.0 * std::sin(static_cast<double>(index) / 900.0 + ch * 0.7) +
          25.0 * ch;
      const double noise = (rng.NextDouble() - 0.5) * 4.0;
      std::snprintf(buf, sizeof(buf), ",%.2f", base + noise);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), ",%.1f,%.1f",
                  21.0 + 3.0 * std::sin(static_cast<double>(index) / 5000.0),
                  45.0 + 8.0 * std::sin(static_cast<double>(index) / 7000.0));
    out += buf;
    return out;
  }

 private:
  uint64_t seed_;
};

// --- Wikipedia-like text ----------------------------------------------------------

class WikiLike : public Dataset {
 public:
  explicit WikiLike(uint64_t seed) : seed_(seed) {}
  std::string_view Name() const override { return "wiki"; }
  size_t ApproxRowBytes() const override { return 2000; }

  std::string Row(uint64_t index) const override {
    Rng rng(RowSeed(seed_, index));
    std::string out;
    out.reserve(2100);
    out += "== ";
    AppendZipfWord(&out, &rng);
    out.push_back(' ');
    AppendZipfWord(&out, &rng);
    out += " ==\n";
    while (out.size() < 1900) {
      const size_t sentence = 8 + rng.Uniform(14);
      for (size_t w = 0; w < sentence; ++w) {
        AppendZipfWord(&out, &rng);
        out.push_back(' ');
      }
      out += rng.Bernoulli(0.2) ? ".\n" : ". ";
      if (rng.Bernoulli(0.08)) {
        out += "[[";
        AppendZipfWord(&out, &rng);
        out += "]] ";
      }
    }
    return out;
  }

 private:
  uint64_t seed_;
};

// --- GitHub-like C source -----------------------------------------------------------

class GithubLike : public Dataset {
 public:
  explicit GithubLike(uint64_t seed) : seed_(seed) {}
  std::string_view Name() const override { return "github"; }
  size_t ApproxRowBytes() const override { return 1500; }

  std::string Row(uint64_t index) const override {
    Rng rng(RowSeed(seed_, index));
    std::string out;
    out.reserve(1600);
    char buf[120];
    std::snprintf(buf, sizeof(buf), "/* module_%04llu.c */\n#include <linux/kernel.h>\n",
                  static_cast<unsigned long long>(index % 4096));
    out += buf;
    while (out.size() < 1400) {
      const std::string fn = "do_" + rng.AlphaString(6);
      std::snprintf(buf, sizeof(buf), "%s %s %s(%s *%s, %s %s)\n{\n",
                    kCKeywords[rng.Uniform(4)].data(), "int", fn.c_str(), "struct device",
                    rng.AlphaString(3).c_str(), "unsigned", rng.AlphaString(3).c_str());
      out += buf;
      const int body = 3 + static_cast<int>(rng.Uniform(5));
      for (int line = 0; line < body; ++line) {
        std::snprintf(buf, sizeof(buf), "\t%s (%s_%llu %s %llu)\n\t\treturn -EINVAL;\n",
                      kCKeywords[rng.Uniform(kCKeywords.size())].data(),
                      rng.AlphaString(4).c_str(),
                      static_cast<unsigned long long>(rng.Uniform(100)),
                      rng.Bernoulli(0.5) ? "<" : ">=",
                      static_cast<unsigned long long>(rng.Uniform(4096)));
        out += buf;
      }
      out += "\treturn 0;\n}\n\n";
    }
    return out;
  }

 private:
  uint64_t seed_;
};

}  // namespace

std::unique_ptr<Dataset> MakeDataset(std::string_view name, uint64_t seed) {
  if (name == "conviva") {
    return std::make_unique<ConvivaLike>(seed);
  }
  if (name == "genomics") {
    return std::make_unique<GenomicsLike>(seed);
  }
  if (name == "twitter") {
    return std::make_unique<TwitterLike>(seed);
  }
  if (name == "gas") {
    return std::make_unique<GasSensorLike>(seed);
  }
  if (name == "wiki") {
    return std::make_unique<WikiLike>(seed);
  }
  if (name == "github") {
    return std::make_unique<GithubLike>(seed);
  }
  return nullptr;
}

std::vector<std::string_view> AllDatasetNames() {
  return {"conviva", "genomics", "twitter", "gas", "wiki", "github"};
}

std::vector<std::pair<uint64_t, std::string>> MaterializeRows(const Dataset& dataset,
                                                              uint64_t count) {
  std::vector<std::pair<uint64_t, std::string>> rows;
  rows.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    rows.emplace_back(i, dataset.Row(i));
  }
  return rows;
}

}  // namespace minicrypt
