// Secondary-predicate workload: rows in the canonical indexed-value layout
// (src/index/indexed_value.h — 8-byte big-endian attribute prefix followed by
// a payload) plus deterministic range predicates over the attribute domain.
//
// Shared by bench/fig_secondary_range.cc and the index differential tests so
// both drive the exact same data shape: attributes are a seeded permutation-
// free hash of the primary key (uniform over the domain, NOT correlated with
// key order — a secondary index earns nothing on attributes that mirror the
// primary order), and every query is reproducible from (seed, index).

#ifndef MINICRYPT_SRC_WORKLOAD_SECONDARY_H_
#define MINICRYPT_SRC_WORKLOAD_SECONDARY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace minicrypt {

struct SecondaryWorkloadOptions {
  uint64_t row_count = 1000;

  // Attributes are uniform over [0, attr_domain). 0 = derive row_count (so
  // about one row per attribute value, duplicates included).
  uint64_t attr_domain = 0;

  // Payload bytes appended after the attribute prefix.
  size_t payload_bytes = 64;

  // Fraction of the attribute domain one range predicate spans.
  double range_selectivity = 0.01;

  uint64_t seed = 1;
};

class SecondaryWorkload {
 public:
  explicit SecondaryWorkload(SecondaryWorkloadOptions options);

  // Deterministic attribute of row `key` (uniform over the domain, decorrelated
  // from key order).
  uint64_t AttrFor(uint64_t key) const;

  // Row value: EncodeIndexedValue(AttrFor(key), payload(key)).
  std::string ValueFor(uint64_t key) const;

  // All rows, keys 0..row_count-1, for BulkLoadIndexed.
  std::vector<std::pair<uint64_t, std::string>> MaterializeRows() const;

  // The `index`-th range predicate [lo, hi] (inclusive), spanning
  // range_selectivity of the domain. Deterministic per (seed, index).
  std::pair<uint64_t, uint64_t> RangeFor(uint64_t index) const;

  // Plaintext oracle: keys whose attribute lies in [lo, hi], sorted.
  std::vector<uint64_t> OracleRange(uint64_t lo, uint64_t hi) const;

  uint64_t attr_domain() const { return attr_domain_; }
  const SecondaryWorkloadOptions& options() const { return options_; }

 private:
  SecondaryWorkloadOptions options_;
  uint64_t attr_domain_;
  uint64_t range_span_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_WORKLOAD_SECONDARY_H_
