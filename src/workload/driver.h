// Multi-threaded closed-loop benchmark driver: N client threads issue
// operations back-to-back for a fixed window; reports aggregate throughput
// and a latency histogram. Used by every figure harness.

#ifndef MINICRYPT_SRC_WORKLOAD_DRIVER_H_
#define MINICRYPT_SRC_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <functional>

#include "src/common/histogram.h"

namespace minicrypt {

struct DriverResult {
  double throughput_ops_s = 0.0;
  uint64_t total_ops = 0;
  uint64_t errors = 0;
  double elapsed_s = 0.0;
  Histogram latency;
};

struct DriverConfig {
  int threads = 4;
  uint64_t run_micros = 2'000'000;
  uint64_t warmup_micros = 0;  // operations before the measured window
};

// `op(thread_id, op_index)` performs one operation and returns true on
// success. Threads run closed-loop until the window elapses.
DriverResult RunClosedLoop(const DriverConfig& config,
                           const std::function<bool(int thread, uint64_t index)>& op);

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_WORKLOAD_DRIVER_H_
