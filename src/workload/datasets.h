// Synthetic stand-ins for the paper's six datasets (§3, Figure 2): Conviva
// session logs, genomics sequences, tweets, gas-sensor time series, Wikipedia
// text, and GitHub (Linux) source files.
//
// The originals are proprietary or impractical to ship; these generators are
// tuned so that the property Figure 2 rests on holds: most redundancy is
// *cross-row* (shared field names, dictionary-coded values, similar records),
// so the compression ratio climbs steeply with rows-per-pack and then
// plateaus near the whole-dataset ratio. Generation is deterministic per
// (dataset, seed, row index).

#ifndef MINICRYPT_SRC_WORKLOAD_DATASETS_H_
#define MINICRYPT_SRC_WORKLOAD_DATASETS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace minicrypt {

class Dataset {
 public:
  virtual ~Dataset() = default;

  // Stable dataset name ("conviva", "genomics", ...).
  virtual std::string_view Name() const = 0;

  // Deterministic value of row `index`.
  virtual std::string Row(uint64_t index) const = 0;

  // Nominal average row size in bytes (for reporting; actual rows vary).
  virtual size_t ApproxRowBytes() const = 0;
};

// Factory. Known names: conviva, genomics, twitter, gas, wiki, github.
// Returns nullptr for unknown names.
std::unique_ptr<Dataset> MakeDataset(std::string_view name, uint64_t seed);

// All six names in the paper's order.
std::vector<std::string_view> AllDatasetNames();

// Convenience: materialize rows [0, count) as (key, value) pairs with keys
// 0..count-1.
std::vector<std::pair<uint64_t, std::string>> MaterializeRows(const Dataset& dataset,
                                                              uint64_t count);

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_WORKLOAD_DATASETS_H_
