#include "src/crypto/padding.h"

#include <algorithm>

#include "src/common/coding.h"

namespace minicrypt {

PaddingTiers::PaddingTiers(std::vector<size_t> tiers) : tiers_(std::move(tiers)) {
  std::sort(tiers_.begin(), tiers_.end());
  tiers_.erase(std::unique(tiers_.begin(), tiers_.end()), tiers_.end());
  tiers_.erase(std::remove(tiers_.begin(), tiers_.end(), size_t{0}), tiers_.end());
}

PaddingTiers PaddingTiers::Exponential(size_t base, int count) {
  std::vector<size_t> tiers;
  size_t t = base;
  for (int i = 0; i < count; ++i) {
    tiers.push_back(t);
    t *= 2;
  }
  return PaddingTiers(std::move(tiers));
}

PaddingTiers PaddingTiers::SmallMediumLarge(size_t small, size_t medium, size_t large) {
  return PaddingTiers({small, medium, large});
}

size_t PaddingTiers::TierFor(size_t size) const {
  if (tiers_.empty()) {
    return size;
  }
  auto it = std::lower_bound(tiers_.begin(), tiers_.end(), size);
  if (it != tiers_.end()) {
    return *it;
  }
  // Above the largest tier: round up to a multiple of the largest tier.
  const size_t top = tiers_.back();
  return ((size + top - 1) / top) * top;
}

std::string PaddingTiers::Pad(std::string_view payload) const {
  std::string framed;
  PutVarint64(&framed, payload.size());
  framed.append(payload);
  const size_t target = TierFor(framed.size());
  if (framed.size() < target) {
    framed.append(target - framed.size(), '\0');
  }
  return framed;
}

Result<std::string> PaddingTiers::Unpad(std::string_view padded) {
  std::string_view in = padded;
  MC_ASSIGN_OR_RETURN(uint64_t len, GetVarint64(&in));
  if (in.size() < len) {
    return Status::Corruption("padding frame shorter than declared payload");
  }
  return std::string(in.substr(0, len));
}

}  // namespace minicrypt
