// Size-tier padding (paper §2.5): the encryption leaks only the size of each
// compressed pack; padding packs to one of a few customer-chosen tiers trades
// a little compression for coarser leakage. The plaintext is framed with its
// true length so padding is removable after decryption.

#ifndef MINICRYPT_SRC_CRYPTO_PADDING_H_
#define MINICRYPT_SRC_CRYPTO_PADDING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace minicrypt {

// A sorted list of target sizes in bytes. Empty = no padding. A pack larger
// than the largest tier is padded up to the next multiple of the largest tier
// (so oversized packs still land on a coarse grid).
class PaddingTiers {
 public:
  PaddingTiers() = default;
  explicit PaddingTiers(std::vector<size_t> tiers);

  // Convenience constructors matching the paper's examples.
  static PaddingTiers None() { return PaddingTiers(); }
  // Exponential scale: {base, 2*base, 4*base, ...} with `count` tiers.
  static PaddingTiers Exponential(size_t base, int count);
  // "Small / medium / large".
  static PaddingTiers SmallMediumLarge(size_t small, size_t medium, size_t large);

  bool enabled() const { return !tiers_.empty(); }

  // Smallest tier >= `size` (see class comment for the overflow rule).
  size_t TierFor(size_t size) const;

  // Frames `payload` with its length and pads to the tier: varint(len) ||
  // payload || zeros.
  std::string Pad(std::string_view payload) const;

  // Inverse of Pad. Works whether or not padding was applied (the frame is
  // always present).
  static Result<std::string> Unpad(std::string_view padded);

  const std::vector<size_t>& tiers() const { return tiers_; }

 private:
  std::vector<size_t> tiers_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_CRYPTO_PADDING_H_
