// Cryptographic primitives used by MiniCrypt (paper §2.5): AES-256-GCM pack
// encryption with a random IV per envelope (AES-CBC retained for comparison),
// SHA-256 hashing of ciphertexts (the update-if token), and an HMAC-SHA256
// PRF for deterministic packID encryption. Portable paths are backed by
// OpenSSL's EVP layer; GCM additionally has an AES-NI + PCLMUL kernel
// selected at runtime (src/common/cpu_features.h).

#ifndef MINICRYPT_SRC_CRYPTO_CRYPTO_H_
#define MINICRYPT_SRC_CRYPTO_CRYPTO_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace minicrypt {

inline constexpr size_t kAesKeyBytes = 32;   // AES-256
inline constexpr size_t kAesBlockBytes = 16;
inline constexpr size_t kSha256Bytes = 32;
inline constexpr size_t kAesGcmIvBytes = 12;
inline constexpr size_t kAesGcmTagBytes = 16;

// A 256-bit symmetric key. Wiped on destruction. The client holds this; the
// server never sees it (threat model §2.1).
class SymmetricKey {
 public:
  // Derives a key from a passphrase-like seed (HKDF-ish: SHA-256 chain).
  // Deterministic — the same seed yields the same key on every client, which
  // is how the paper's "clients share a single encryption key" is modelled.
  static SymmetricKey FromSeed(std::string_view seed);

  // Fresh random key from the OS CSPRNG.
  static SymmetricKey Random();

  ~SymmetricKey();

  SymmetricKey(const SymmetricKey&) = default;
  SymmetricKey& operator=(const SymmetricKey&) = default;

  const uint8_t* data() const { return bytes_.data(); }
  size_t size() const { return bytes_.size(); }

  // Derives an independent subkey for a named purpose (domain separation:
  // pack encryption vs packID PRF vs per-table keys).
  SymmetricKey Derive(std::string_view purpose) const;

 private:
  SymmetricKey() = default;

  std::array<uint8_t, kAesKeyBytes> bytes_{};
};

// SHA-256 of `data`, as a 32-byte string. Used as the pack hash h in the
// update-if protocol (paper Figure 5).
std::string Sha256(std::string_view data);

// HMAC-SHA256(key, data) — the PRF used for packID encryption (paper §2.5:
// "MiniCrypt applies a pseudorandom function to the packIDs").
std::string HmacSha256(const SymmetricKey& key, std::string_view data);

// Constant-time equality for MACs/hashes.
bool ConstantTimeEqual(std::string_view a, std::string_view b);

// AES-256-CBC envelope: output = IV (16 bytes) || ciphertext (PKCS#7 inside).
// A fresh random IV is drawn per call, so equal plaintexts produce different
// envelopes (semantic security, §2.5).
Result<std::string> AesCbcEncrypt(const SymmetricKey& key, std::string_view plaintext);

// Inverse of AesCbcEncrypt. Corruption on malformed envelopes or bad padding.
Result<std::string> AesCbcDecrypt(const SymmetricKey& key, std::string_view envelope);

// AES-256-GCM envelope: output = IV (12 bytes) || ciphertext (same length as
// the plaintext) || tag (16 bytes). A fresh random IV is drawn per call.
// Authenticated: tampering with any envelope byte fails decryption, so packs
// no longer rely solely on the external SHA-256 hash for integrity.
//
// `aad` is additional authenticated data: covered by the tag but not
// encrypted or stored in the envelope. Decryption must present the same
// bytes, which is how envelopes are bound to their table / packID / key
// epoch (an envelope spliced into another context fails the tag check).
//
// Dispatches at runtime between the AES-NI + PCLMUL kernel
// (src/crypto/aes_gcm_simd.cc) and the portable OpenSSL EVP path; both
// produce identical envelopes for identical IVs.
Result<std::string> AesGcmEncrypt(const SymmetricKey& key, std::string_view plaintext,
                                  std::string_view aad = {});

// Deterministic variant with a caller-supplied 12-byte IV. Exists for the
// SIMD/portable differential tests; production callers must use AesGcmEncrypt
// (IV reuse under the same key breaks GCM).
Result<std::string> AesGcmEncryptWithIv(const SymmetricKey& key, std::string_view iv,
                                        std::string_view plaintext,
                                        std::string_view aad = {});

// Inverse of AesGcmEncrypt. Corruption on malformed envelopes, tag mismatch,
// or an `aad` that differs from the one sealed over.
Result<std::string> AesGcmDecrypt(const SymmetricKey& key, std::string_view envelope,
                                  std::string_view aad = {});

// Fills `out` with CSPRNG bytes.
Status RandomBytes(uint8_t* out, size_t n);

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_CRYPTO_CRYPTO_H_
