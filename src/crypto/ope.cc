#include "src/crypto/ope.h"

#include "src/common/coding.h"

namespace minicrypt {

namespace {

// Total ciphertext range: [0, 2^96).
constexpr int kRangeBits = 96;

std::string EncodeImage(unsigned __int128 v) {
  std::string out(kOpeCiphertextBytes, '\0');
  for (size_t i = 0; i < kOpeCiphertextBytes; ++i) {
    out[kOpeCiphertextBytes - 1 - i] = static_cast<char>(static_cast<uint8_t>(v));
    v >>= 8;
  }
  return out;
}

Result<unsigned __int128> DecodeImage(std::string_view s) {
  if (s.size() != kOpeCiphertextBytes) {
    return Status::Corruption("OPE ciphertext must be 12 bytes");
  }
  unsigned __int128 v = 0;
  for (char c : s) {
    v = (v << 8) | static_cast<uint8_t>(c);
  }
  return v;
}

}  // namespace

OpeCipher::OpeCipher(const SymmetricKey& key) : key_(key.Derive("ope-v1")) {}

OpeCipher::U128 OpeCipher::NodeRandom(uint64_t dlo, uint64_t dhi, U128 bound) const {
  std::string node;
  AppendKey64(&node, dlo);
  AppendKey64(&node, dhi);
  const std::string mac = HmacSha256(key_, node);
  U128 v = 0;
  for (int i = 0; i < 16; ++i) {
    v = (v << 8) | static_cast<uint8_t>(mac[static_cast<size_t>(i)]);
  }
  // Modulo bias is negligible at 128 bits of input entropy.
  return bound == 0 ? 0 : v % bound;
}

std::string OpeCipher::Encrypt(uint64_t plaintext) const {
  uint64_t dlo = 0;
  uint64_t dhi = ~0ULL;
  U128 rlo = 0;
  U128 rhi = (static_cast<U128>(1) << kRangeBits) - 1;

  while (dlo < dhi) {
    const uint64_t dmid = dlo + (dhi - dlo) / 2;
    const U128 left_count = static_cast<U128>(dmid - dlo) + 1;
    const U128 right_count = static_cast<U128>(dhi - dmid);
    // rmid is the last range point assigned to the left half. It must leave
    // at least left_count points on the left and right_count on the right:
    //   rmid in [rlo + left_count - 1, rhi - right_count].
    const U128 cut_lo = rlo + left_count - 1;
    const U128 cut_hi = rhi - right_count;
    const U128 rmid = cut_lo + NodeRandom(dlo, dhi, cut_hi - cut_lo + 1);
    if (plaintext <= dmid) {
      dhi = dmid;
      rhi = rmid;
    } else {
      dlo = dmid + 1;
      rlo = rmid + 1;
    }
  }
  return EncodeImage(rlo);
}

Result<uint64_t> OpeCipher::Decrypt(std::string_view ciphertext) const {
  MC_ASSIGN_OR_RETURN(U128 image, DecodeImage(ciphertext));
  uint64_t dlo = 0;
  uint64_t dhi = ~0ULL;
  U128 rlo = 0;
  U128 rhi = (static_cast<U128>(1) << kRangeBits) - 1;
  if (image > rhi) {
    return Status::Corruption("OPE ciphertext out of range");
  }
  while (dlo < dhi) {
    const uint64_t dmid = dlo + (dhi - dlo) / 2;
    const U128 left_count = static_cast<U128>(dmid - dlo) + 1;
    const U128 right_count = static_cast<U128>(dhi - dmid);
    const U128 cut_lo = rlo + left_count - 1;
    const U128 cut_hi = rhi - right_count;
    const U128 rmid = cut_lo + NodeRandom(dlo, dhi, cut_hi - cut_lo + 1);
    if (image <= rmid) {
      dhi = dmid;
      rhi = rmid;
    } else {
      dlo = dmid + 1;
      rlo = rmid + 1;
    }
  }
  if (image != rlo) {
    return Status::Corruption("not an OPE image under this key");
  }
  return dlo;
}

}  // namespace minicrypt
