// Order-preserving encryption of 64-bit keys (paper §2.5: "order-preserving
// encryption (OPE) schemes enable efficient range queries on encrypted data
// in exchange for revealing the order of packIDs to the server").
//
// Construction: keyed lazy binary partitioning. The plaintext domain [0, 2^64)
// is mapped into a 96-bit ciphertext range by recursively halving the domain
// and splitting the range at a pseudorandom cut derived (via HMAC) from the
// key and the domain interval — so every client with the key computes the
// same monotone injection, without shared state. This is the classic
// binary-search OPE; like all OPE it deliberately leaks order (and some
// distance information), which is exactly the trade-off the paper describes.
//
// Cost: one HMAC per domain-halving level (≤ 64 per encryption).

#ifndef MINICRYPT_SRC_CRYPTO_OPE_H_
#define MINICRYPT_SRC_CRYPTO_OPE_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/crypto/crypto.h"

namespace minicrypt {

inline constexpr size_t kOpeCiphertextBytes = 12;  // 96-bit images

class OpeCipher {
 public:
  // `key` should be a purpose-derived subkey (see SymmetricKey::Derive).
  explicit OpeCipher(const SymmetricKey& key);

  // Monotone injection: a < b  =>  Encrypt(a) < Encrypt(b) (bytewise, the
  // image is big-endian). Deterministic per key.
  std::string Encrypt(uint64_t plaintext) const;

  // Inverse (binary search down the same partition tree). Corruption when
  // `ciphertext` is not an image under this key.
  Result<uint64_t> Decrypt(std::string_view ciphertext) const;

 private:
  using U128 = unsigned __int128;

  // Pseudorandom range cut for the node covering domain [dlo, dhi].
  U128 NodeRandom(uint64_t dlo, uint64_t dhi, U128 bound) const;

  SymmetricKey key_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_CRYPTO_OPE_H_
