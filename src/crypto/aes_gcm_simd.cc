#include "src/crypto/aes_gcm_simd.h"

#include <cstring>

#include <openssl/crypto.h>

#if defined(__x86_64__)

#include <immintrin.h>

#pragma GCC push_options
#pragma GCC target("aes,pclmul,ssse3,sse4.2")

namespace minicrypt {
namespace internal {
namespace {

constexpr int kRounds = 14;  // AES-256

// --- Key schedule -------------------------------------------------------------

inline __m128i ExpandEven(__m128i prev_even, __m128i assist) {
  assist = _mm_shuffle_epi32(assist, 0xff);
  prev_even = _mm_xor_si128(prev_even, _mm_slli_si128(prev_even, 4));
  prev_even = _mm_xor_si128(prev_even, _mm_slli_si128(prev_even, 4));
  prev_even = _mm_xor_si128(prev_even, _mm_slli_si128(prev_even, 4));
  return _mm_xor_si128(prev_even, assist);
}

inline __m128i ExpandOdd(__m128i prev_odd, __m128i assist) {
  assist = _mm_shuffle_epi32(assist, 0xaa);
  prev_odd = _mm_xor_si128(prev_odd, _mm_slli_si128(prev_odd, 4));
  prev_odd = _mm_xor_si128(prev_odd, _mm_slli_si128(prev_odd, 4));
  prev_odd = _mm_xor_si128(prev_odd, _mm_slli_si128(prev_odd, 4));
  return _mm_xor_si128(prev_odd, assist);
}

// AESKEYGENASSIST takes an immediate round constant, hence the macro unroll.
#define MC_AES256_EXPAND(rk, i, rcon)                                          \
  do {                                                                         \
    (rk)[i] = ExpandEven((rk)[(i)-2],                                          \
                         _mm_aeskeygenassist_si128((rk)[(i)-1], (rcon)));      \
    if ((i) + 1 <= kRounds) {                                                  \
      (rk)[(i) + 1] =                                                          \
          ExpandOdd((rk)[(i)-1], _mm_aeskeygenassist_si128((rk)[i], 0));       \
    }                                                                          \
  } while (0)

void ExpandKey256(const uint8_t key[32], __m128i rk[kRounds + 1]) {
  rk[0] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key));
  rk[1] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key + 16));
  MC_AES256_EXPAND(rk, 2, 0x01);
  MC_AES256_EXPAND(rk, 4, 0x02);
  MC_AES256_EXPAND(rk, 6, 0x04);
  MC_AES256_EXPAND(rk, 8, 0x08);
  MC_AES256_EXPAND(rk, 10, 0x10);
  MC_AES256_EXPAND(rk, 12, 0x20);
  MC_AES256_EXPAND(rk, 14, 0x40);
}

#undef MC_AES256_EXPAND

inline __m128i EncryptBlock(const __m128i rk[kRounds + 1], __m128i m) {
  m = _mm_xor_si128(m, rk[0]);
  for (int r = 1; r < kRounds; ++r) {
    m = _mm_aesenc_si128(m, rk[r]);
  }
  return _mm_aesenclast_si128(m, rk[kRounds]);
}

// Interleaved streams keep the AES units' pipeline full in CTR mode; eight
// streams are enough to hide aesenc latency even on cores where it is 7+
// cycles.
template <int N>
inline void EncryptBlockN(const __m128i rk[kRounds + 1], __m128i b[N]) {
  for (int j = 0; j < N; ++j) {
    b[j] = _mm_xor_si128(b[j], rk[0]);
  }
  for (int r = 1; r < kRounds; ++r) {
    for (int j = 0; j < N; ++j) {
      b[j] = _mm_aesenc_si128(b[j], rk[r]);
    }
  }
  for (int j = 0; j < N; ++j) {
    b[j] = _mm_aesenclast_si128(b[j], rk[kRounds]);
  }
}

// --- GHASH (PCLMUL, reflected representation) --------------------------------

inline __m128i Bswap128(__m128i v) {
  const __m128i mask =
      _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  return _mm_shuffle_epi8(v, mask);
}

// 128x128 carry-less multiply into an unreduced 256-bit product (lo, hi),
// with the middle terms folded in. Products are XOR-accumulated across
// blocks before the single reduction — the serial dependency per 4-block
// group is one reduction instead of four (Intel CLMUL white paper,
// aggregated reduction).
inline void ClMul256(__m128i a, __m128i b, __m128i* lo, __m128i* hi) {
  const __m128i t0 = _mm_clmulepi64_si128(a, b, 0x00);
  __m128i t1 = _mm_clmulepi64_si128(a, b, 0x10);
  const __m128i t2 = _mm_clmulepi64_si128(a, b, 0x01);
  const __m128i t3 = _mm_clmulepi64_si128(a, b, 0x11);
  t1 = _mm_xor_si128(t1, t2);
  *lo = _mm_xor_si128(t0, _mm_slli_si128(t1, 8));
  *hi = _mm_xor_si128(t3, _mm_srli_si128(t1, 8));
}

// Reduces an unreduced (lo, hi) product mod x^128 + x^7 + x^2 + x + 1 for
// byte-reflected operands: 1-bit left shift of the 256-bit value (bit-order
// compensation), then the two-phase shift reduction.
inline __m128i Reduce256(__m128i lo, __m128i hi) {
  __m128i tmp7 = _mm_srli_epi32(lo, 31);
  __m128i tmp8 = _mm_srli_epi32(hi, 31);
  lo = _mm_slli_epi32(lo, 1);
  hi = _mm_slli_epi32(hi, 1);

  const __m128i tmp9 = _mm_srli_si128(tmp7, 12);
  tmp8 = _mm_slli_si128(tmp8, 4);
  tmp7 = _mm_slli_si128(tmp7, 4);
  lo = _mm_or_si128(lo, tmp7);
  hi = _mm_or_si128(hi, tmp8);
  hi = _mm_or_si128(hi, tmp9);

  tmp7 = _mm_slli_epi32(lo, 31);
  tmp8 = _mm_slli_epi32(lo, 30);
  __m128i tmp5 = _mm_slli_epi32(lo, 25);

  tmp7 = _mm_xor_si128(tmp7, tmp8);
  tmp7 = _mm_xor_si128(tmp7, tmp5);
  tmp8 = _mm_srli_si128(tmp7, 4);
  tmp7 = _mm_slli_si128(tmp7, 12);
  lo = _mm_xor_si128(lo, tmp7);

  __m128i tmp2 = _mm_srli_epi32(lo, 1);
  const __m128i tmp4 = _mm_srli_epi32(lo, 2);
  tmp5 = _mm_srli_epi32(lo, 7);
  tmp2 = _mm_xor_si128(tmp2, tmp4);
  tmp2 = _mm_xor_si128(tmp2, tmp5);
  tmp2 = _mm_xor_si128(tmp2, tmp8);
  lo = _mm_xor_si128(lo, tmp2);
  return _mm_xor_si128(hi, lo);
}

inline __m128i GfMul(__m128i a, __m128i b) {
  __m128i lo, hi;
  ClMul256(a, b, &lo, &hi);
  return Reduce256(lo, hi);
}

inline __m128i GhashBlock(__m128i acc, __m128i block, __m128i h_reflected) {
  return GfMul(_mm_xor_si128(acc, Bswap128(block)), h_reflected);
}

// Aggregated 4-block GHASH update: (acc^R(b0))*H^4 + R(b1)*H^3 + R(b2)*H^2 +
// R(b3)*H, one reduction total. h[j] = H^(j+1), reflected.
inline __m128i Ghash4(__m128i acc, const __m128i b[4], const __m128i h[4]) {
  __m128i lo, hi, lo2, hi2;
  ClMul256(_mm_xor_si128(acc, Bswap128(b[0])), h[3], &lo, &hi);
  ClMul256(Bswap128(b[1]), h[2], &lo2, &hi2);
  lo = _mm_xor_si128(lo, lo2);
  hi = _mm_xor_si128(hi, hi2);
  ClMul256(Bswap128(b[2]), h[1], &lo2, &hi2);
  lo = _mm_xor_si128(lo, lo2);
  hi = _mm_xor_si128(hi, hi2);
  ClMul256(Bswap128(b[3]), h[0], &lo2, &hi2);
  lo = _mm_xor_si128(lo, lo2);
  hi = _mm_xor_si128(hi, hi2);
  return Reduce256(lo, hi);
}

struct GcmContext {
  __m128i rk[kRounds + 1];
  __m128i h[4];  // H^1..H^4, reflected
  __m128i ek_j0;
  __m128i ctr_prefix;  // iv || 0^32; the counter is inserted into lane 3
};

void InitContext(GcmContext* ctx, const uint8_t key[32], const uint8_t iv[12]) {
  ExpandKey256(key, ctx->rk);
  const __m128i h1 = Bswap128(EncryptBlock(ctx->rk, _mm_setzero_si128()));
  ctx->h[0] = h1;
  ctx->h[1] = GfMul(h1, ctx->h[0]);
  ctx->h[2] = GfMul(h1, ctx->h[1]);
  ctx->h[3] = GfMul(h1, ctx->h[2]);
  uint8_t j0[16];
  std::memcpy(j0, iv, 12);
  j0[12] = 0;
  j0[13] = 0;
  j0[14] = 0;
  j0[15] = 1;
  ctx->ek_j0 =
      EncryptBlock(ctx->rk, _mm_loadu_si128(reinterpret_cast<__m128i*>(j0)));
  j0[15] = 0;
  ctx->ctr_prefix = _mm_loadu_si128(reinterpret_cast<__m128i*>(j0));
}

inline __m128i CounterBlock(const GcmContext& ctx, uint32_t counter) {
  return _mm_insert_epi32(ctx.ctr_prefix,
                          static_cast<int>(__builtin_bswap32(counter)), 3);
}

// GHASH over the AAD, zero-padded to a block boundary (SP 800-38D step 5's
// leading A blocks). Runs before the ciphertext pass and seeds its
// accumulator.
__m128i GhashAad(const GcmContext& ctx, const uint8_t* aad, size_t n) {
  __m128i acc = _mm_setzero_si128();
  size_t i = 0;
  while (i + 64 <= n) {
    __m128i blocks[4];
    for (int j = 0; j < 4; ++j) {
      blocks[j] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(aad + i + 16 * j));
    }
    acc = Ghash4(acc, blocks, ctx.h);
    i += 64;
  }
  while (i < n) {
    const size_t chunk = n - i < 16 ? n - i : 16;
    uint8_t block[16] = {0};
    std::memcpy(block, aad + i, chunk);
    acc = GhashBlock(acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(block)),
                     ctx.h[0]);
    i += chunk;
  }
  return acc;
}

// One fused pass: CTR-encrypt/decrypt and GHASH the ciphertext. For
// encryption the ciphertext is the output (ghash_output=true); for
// decryption it is the input. `acc` arrives holding the GHASH over the AAD
// blocks; returns the accumulator over AAD + ciphertext + length block.
__m128i CtrAndGhash(const GcmContext& ctx, __m128i acc, uint64_t aad_bits,
                    const uint8_t* in, size_t n, uint8_t* out, bool ghash_output) {
  uint32_t counter = 2;
  size_t i = 0;
  while (i + 128 <= n) {
    __m128i blocks[8];
    for (int j = 0; j < 8; ++j) {
      blocks[j] = CounterBlock(ctx, counter++);
    }
    EncryptBlockN<8>(ctx.rk, blocks);
    __m128i ct[8];
    for (int j = 0; j < 8; ++j) {
      const __m128i data =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i + 16 * j));
      const __m128i x = _mm_xor_si128(data, blocks[j]);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 16 * j), x);
      ct[j] = ghash_output ? x : data;
    }
    acc = Ghash4(acc, ct, ctx.h);
    acc = Ghash4(acc, ct + 4, ctx.h);
    i += 128;
  }
  while (i + 64 <= n) {
    __m128i blocks[4];
    for (int j = 0; j < 4; ++j) {
      blocks[j] = CounterBlock(ctx, counter++);
    }
    EncryptBlockN<4>(ctx.rk, blocks);
    __m128i ct[4];
    for (int j = 0; j < 4; ++j) {
      const __m128i data =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i + 16 * j));
      const __m128i x = _mm_xor_si128(data, blocks[j]);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 16 * j), x);
      ct[j] = ghash_output ? x : data;
    }
    acc = Ghash4(acc, ct, ctx.h);
    i += 64;
  }
  while (i < n) {
    const __m128i ks = EncryptBlock(ctx.rk, CounterBlock(ctx, counter++));
    const size_t chunk = n - i < 16 ? n - i : 16;
    uint8_t ks_bytes[16];
    _mm_storeu_si128(reinterpret_cast<__m128i*>(ks_bytes), ks);
    uint8_t ct_bytes[16] = {0};
    for (size_t b = 0; b < chunk; ++b) {
      const uint8_t c_in = in[i + b];
      const uint8_t c_out = static_cast<uint8_t>(c_in ^ ks_bytes[b]);
      out[i + b] = c_out;
      ct_bytes[b] = ghash_output ? c_out : c_in;
    }
    acc = GhashBlock(
        acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(ct_bytes)),
        ctx.h[0]);
    i += chunk;
  }
  // len(A) || len(C), both 64-bit big-endian bit counts.
  uint8_t len_block[16] = {0};
  const uint64_t ct_bits = static_cast<uint64_t>(n) * 8;
  for (int b = 0; b < 8; ++b) {
    len_block[7 - b] = static_cast<uint8_t>(aad_bits >> (8 * b));
    len_block[15 - b] = static_cast<uint8_t>(ct_bits >> (8 * b));
  }
  return GhashBlock(
      acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(len_block)),
      ctx.h[0]);
}

inline void StoreTag(const GcmContext& ctx, __m128i ghash, uint8_t tag[16]) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(tag),
                   _mm_xor_si128(Bswap128(ghash), ctx.ek_j0));
}

}  // namespace

bool AesGcmSimdCompiled() { return true; }

void AesGcmSimdEncrypt(const uint8_t key[32], const uint8_t iv[12],
                       const uint8_t* aad, size_t aad_len,
                       const uint8_t* pt, size_t n, uint8_t* ct, uint8_t tag[16]) {
  GcmContext ctx;
  InitContext(&ctx, key, iv);
  const __m128i aad_acc = aad_len != 0 ? GhashAad(ctx, aad, aad_len) : _mm_setzero_si128();
  const __m128i ghash = CtrAndGhash(ctx, aad_acc, static_cast<uint64_t>(aad_len) * 8,
                                    pt, n, ct, /*ghash_output=*/true);
  StoreTag(ctx, ghash, tag);
  OPENSSL_cleanse(&ctx, sizeof(ctx));
}

bool AesGcmSimdDecrypt(const uint8_t key[32], const uint8_t iv[12],
                       const uint8_t* aad, size_t aad_len,
                       const uint8_t* ct, size_t n, const uint8_t tag[16],
                       uint8_t* pt) {
  GcmContext ctx;
  InitContext(&ctx, key, iv);
  // Decrypt and authenticate in one pass; on tag mismatch the output buffer
  // is wiped before returning (callers discard it anyway).
  const __m128i aad_acc = aad_len != 0 ? GhashAad(ctx, aad, aad_len) : _mm_setzero_si128();
  const __m128i ghash = CtrAndGhash(ctx, aad_acc, static_cast<uint64_t>(aad_len) * 8,
                                    ct, n, pt, /*ghash_output=*/false);
  uint8_t expected[16];
  StoreTag(ctx, ghash, expected);
  unsigned char diff = 0;
  for (int i = 0; i < 16; ++i) {
    diff = static_cast<unsigned char>(diff | (expected[i] ^ tag[i]));
  }
  OPENSSL_cleanse(&ctx, sizeof(ctx));
  if (diff != 0) {
    OPENSSL_cleanse(pt, n);
    return false;
  }
  return true;
}

}  // namespace internal
}  // namespace minicrypt

#pragma GCC pop_options

#else  // !defined(__x86_64__)

namespace minicrypt {
namespace internal {

bool AesGcmSimdCompiled() { return false; }

void AesGcmSimdEncrypt(const uint8_t[32], const uint8_t[12], const uint8_t*, size_t,
                       const uint8_t*, size_t, uint8_t*, uint8_t[16]) {}

bool AesGcmSimdDecrypt(const uint8_t[32], const uint8_t[12], const uint8_t*, size_t,
                       const uint8_t*, size_t, const uint8_t[16], uint8_t*) {
  return false;
}

}  // namespace internal
}  // namespace minicrypt

#endif  // defined(__x86_64__)
