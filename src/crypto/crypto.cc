#include "src/crypto/crypto.h"

#include <openssl/evp.h>
#include <openssl/hmac.h>
#include <openssl/rand.h>
#include <openssl/sha.h>

#include <cstring>
#include <memory>

#include "src/common/cpu_features.h"
#include "src/crypto/aes_gcm_simd.h"
#include "src/obs/metrics.h"

namespace minicrypt {

namespace {

struct CipherCtxDeleter {
  void operator()(EVP_CIPHER_CTX* ctx) const { EVP_CIPHER_CTX_free(ctx); }
};
using CipherCtx = std::unique_ptr<EVP_CIPHER_CTX, CipherCtxDeleter>;

bool UseGcmKernel() {
  return internal::AesGcmSimdCompiled() && AesGcmHardwareEnabled();
}

// Portable AES-256-GCM via OpenSSL EVP; the oracle for the AES-NI kernel.
Result<std::string> GcmEncryptPortable(const SymmetricKey& key, const uint8_t* iv,
                                       std::string_view plaintext, std::string_view aad) {
  CipherCtx ctx(EVP_CIPHER_CTX_new());
  if (!ctx) {
    return Status::Internal("EVP_CIPHER_CTX_new failed");
  }
  if (EVP_EncryptInit_ex(ctx.get(), EVP_aes_256_gcm(), nullptr, key.data(), iv) != 1) {
    return Status::Internal("EVP_EncryptInit_ex failed");
  }
  int aad_len = 0;
  if (!aad.empty() &&
      EVP_EncryptUpdate(ctx.get(), nullptr, &aad_len,
                        reinterpret_cast<const unsigned char*>(aad.data()),
                        static_cast<int>(aad.size())) != 1) {
    return Status::Internal("EVP_EncryptUpdate (AAD) failed");
  }
  std::string out(reinterpret_cast<const char*>(iv), kAesGcmIvBytes);
  const size_t header = out.size();
  out.resize(header + plaintext.size() + kAesGcmTagBytes);

  int len1 = 0;
  if (!plaintext.empty() &&
      EVP_EncryptUpdate(ctx.get(), reinterpret_cast<unsigned char*>(out.data() + header),
                        &len1, reinterpret_cast<const unsigned char*>(plaintext.data()),
                        static_cast<int>(plaintext.size())) != 1) {
    return Status::Internal("EVP_EncryptUpdate failed");
  }
  int len2 = 0;
  if (EVP_EncryptFinal_ex(ctx.get(),
                          reinterpret_cast<unsigned char*>(out.data() + header + len1),
                          &len2) != 1) {
    return Status::Internal("EVP_EncryptFinal_ex failed");
  }
  if (static_cast<size_t>(len1 + len2) != plaintext.size()) {
    return Status::Internal("GCM ciphertext length mismatch");
  }
  if (EVP_CIPHER_CTX_ctrl(ctx.get(), EVP_CTRL_GCM_GET_TAG,
                          static_cast<int>(kAesGcmTagBytes),
                          out.data() + header + plaintext.size()) != 1) {
    return Status::Internal("EVP_CTRL_GCM_GET_TAG failed");
  }
  return out;
}

Result<std::string> GcmDecryptPortable(const SymmetricKey& key, const uint8_t* iv,
                                       std::string_view ct, std::string_view tag,
                                       std::string_view aad) {
  CipherCtx ctx(EVP_CIPHER_CTX_new());
  if (!ctx) {
    return Status::Internal("EVP_CIPHER_CTX_new failed");
  }
  if (EVP_DecryptInit_ex(ctx.get(), EVP_aes_256_gcm(), nullptr, key.data(), iv) != 1) {
    return Status::Internal("EVP_DecryptInit_ex failed");
  }
  int aad_len = 0;
  if (!aad.empty() &&
      EVP_DecryptUpdate(ctx.get(), nullptr, &aad_len,
                        reinterpret_cast<const unsigned char*>(aad.data()),
                        static_cast<int>(aad.size())) != 1) {
    return Status::Internal("EVP_DecryptUpdate (AAD) failed");
  }
  std::string out(ct.size(), '\0');
  int len1 = 0;
  if (!ct.empty() &&
      EVP_DecryptUpdate(ctx.get(), reinterpret_cast<unsigned char*>(out.data()), &len1,
                        reinterpret_cast<const unsigned char*>(ct.data()),
                        static_cast<int>(ct.size())) != 1) {
    return Status::Corruption("GCM decrypt failed");
  }
  if (EVP_CIPHER_CTX_ctrl(ctx.get(), EVP_CTRL_GCM_SET_TAG,
                          static_cast<int>(tag.size()),
                          const_cast<char*>(tag.data())) != 1) {
    return Status::Internal("EVP_CTRL_GCM_SET_TAG failed");
  }
  int len2 = 0;
  if (EVP_DecryptFinal_ex(ctx.get(), reinterpret_cast<unsigned char*>(out.data() + len1),
                          &len2) != 1) {
    // Wrong key or tampered ciphertext/tag.
    return Status::Corruption("GCM tag check failed");
  }
  out.resize(static_cast<size_t>(len1) + static_cast<size_t>(len2));
  return out;
}

}  // namespace

SymmetricKey SymmetricKey::FromSeed(std::string_view seed) {
  SymmetricKey key;
  // Two chained SHA-256 invocations with distinct prefixes (simple KDF; the
  // security of the reproduction does not rest on password hardness).
  const std::string h = Sha256(std::string("minicrypt-key-v1\x01") + std::string(seed));
  std::memcpy(key.bytes_.data(), h.data(), kAesKeyBytes);
  return key;
}

SymmetricKey SymmetricKey::Random() {
  SymmetricKey key;
  RandomBytes(key.bytes_.data(), key.bytes_.size());
  return key;
}

SymmetricKey::~SymmetricKey() {
  // Best-effort wipe; OPENSSL_cleanse resists dead-store elimination.
  OPENSSL_cleanse(bytes_.data(), bytes_.size());
}

SymmetricKey SymmetricKey::Derive(std::string_view purpose) const {
  SymmetricKey out;
  const std::string mac = HmacSha256(*this, std::string("derive\x02") + std::string(purpose));
  std::memcpy(out.bytes_.data(), mac.data(), kAesKeyBytes);
  return out;
}

std::string Sha256(std::string_view data) {
  std::string out(kSha256Bytes, '\0');
  SHA256(reinterpret_cast<const unsigned char*>(data.data()), data.size(),
         reinterpret_cast<unsigned char*>(out.data()));
  return out;
}

std::string HmacSha256(const SymmetricKey& key, std::string_view data) {
  std::string out(kSha256Bytes, '\0');
  unsigned int len = 0;
  HMAC(EVP_sha256(), key.data(), static_cast<int>(key.size()),
       reinterpret_cast<const unsigned char*>(data.data()), data.size(),
       reinterpret_cast<unsigned char*>(out.data()), &len);
  out.resize(len);
  return out;
}

bool ConstantTimeEqual(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  unsigned char acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<unsigned char>(acc | (static_cast<unsigned char>(a[i]) ^
                                            static_cast<unsigned char>(b[i])));
  }
  return acc == 0;
}

Status RandomBytes(uint8_t* out, size_t n) {
  if (RAND_bytes(out, static_cast<int>(n)) != 1) {
    return Status::Internal("RAND_bytes failed");
  }
  return Status::Ok();
}

Result<std::string> AesCbcEncrypt(const SymmetricKey& key, std::string_view plaintext) {
  uint8_t iv[kAesBlockBytes];
  MC_RETURN_IF_ERROR(RandomBytes(iv, sizeof(iv)));

  CipherCtx ctx(EVP_CIPHER_CTX_new());
  if (!ctx) {
    return Status::Internal("EVP_CIPHER_CTX_new failed");
  }
  if (EVP_EncryptInit_ex(ctx.get(), EVP_aes_256_cbc(), nullptr, key.data(), iv) != 1) {
    return Status::Internal("EVP_EncryptInit_ex failed");
  }
  std::string out(reinterpret_cast<char*>(iv), kAesBlockBytes);
  const size_t header = out.size();
  out.resize(header + plaintext.size() + 2 * kAesBlockBytes);

  int len1 = 0;
  if (EVP_EncryptUpdate(ctx.get(), reinterpret_cast<unsigned char*>(out.data() + header), &len1,
                        reinterpret_cast<const unsigned char*>(plaintext.data()),
                        static_cast<int>(plaintext.size())) != 1) {
    return Status::Internal("EVP_EncryptUpdate failed");
  }
  int len2 = 0;
  if (EVP_EncryptFinal_ex(ctx.get(),
                          reinterpret_cast<unsigned char*>(out.data() + header + len1),
                          &len2) != 1) {
    return Status::Internal("EVP_EncryptFinal_ex failed");
  }
  out.resize(header + static_cast<size_t>(len1) + static_cast<size_t>(len2));
  return out;
}

Result<std::string> AesCbcDecrypt(const SymmetricKey& key, std::string_view envelope) {
  if (envelope.size() < 2 * kAesBlockBytes || (envelope.size() % kAesBlockBytes) != 0) {
    return Status::Corruption("AES envelope has invalid length");
  }
  const auto* iv = reinterpret_cast<const unsigned char*>(envelope.data());
  const std::string_view ct = envelope.substr(kAesBlockBytes);

  CipherCtx ctx(EVP_CIPHER_CTX_new());
  if (!ctx) {
    return Status::Internal("EVP_CIPHER_CTX_new failed");
  }
  if (EVP_DecryptInit_ex(ctx.get(), EVP_aes_256_cbc(), nullptr, key.data(), iv) != 1) {
    return Status::Internal("EVP_DecryptInit_ex failed");
  }
  std::string out(ct.size() + kAesBlockBytes, '\0');
  int len1 = 0;
  if (EVP_DecryptUpdate(ctx.get(), reinterpret_cast<unsigned char*>(out.data()), &len1,
                        reinterpret_cast<const unsigned char*>(ct.data()),
                        static_cast<int>(ct.size())) != 1) {
    return Status::Corruption("AES decrypt failed");
  }
  int len2 = 0;
  if (EVP_DecryptFinal_ex(ctx.get(), reinterpret_cast<unsigned char*>(out.data() + len1),
                          &len2) != 1) {
    // Wrong key or tampered ciphertext shows up as a padding failure.
    return Status::Corruption("AES padding check failed");
  }
  out.resize(static_cast<size_t>(len1) + static_cast<size_t>(len2));
  return out;
}

Result<std::string> AesGcmEncryptWithIv(const SymmetricKey& key, std::string_view iv,
                                        std::string_view plaintext, std::string_view aad) {
  if (iv.size() != kAesGcmIvBytes) {
    return Status::InvalidArgument("GCM IV must be 12 bytes");
  }
  const auto* iv_bytes = reinterpret_cast<const uint8_t*>(iv.data());
  if (UseGcmKernel()) {
    OBS_COUNTER_INC("crypto.gcm.dispatch.aesni");
    std::string out(iv);
    out.resize(kAesGcmIvBytes + plaintext.size() + kAesGcmTagBytes);
    auto* ct = reinterpret_cast<uint8_t*>(out.data() + kAesGcmIvBytes);
    internal::AesGcmSimdEncrypt(key.data(), iv_bytes,
                                reinterpret_cast<const uint8_t*>(aad.data()), aad.size(),
                                reinterpret_cast<const uint8_t*>(plaintext.data()),
                                plaintext.size(), ct, ct + plaintext.size());
    return out;
  }
  OBS_COUNTER_INC("crypto.gcm.dispatch.portable");
  return GcmEncryptPortable(key, iv_bytes, plaintext, aad);
}

Result<std::string> AesGcmEncrypt(const SymmetricKey& key, std::string_view plaintext,
                                  std::string_view aad) {
  uint8_t iv[kAesGcmIvBytes];
  MC_RETURN_IF_ERROR(RandomBytes(iv, sizeof(iv)));
  return AesGcmEncryptWithIv(
      key, std::string_view(reinterpret_cast<const char*>(iv), sizeof(iv)), plaintext, aad);
}

Result<std::string> AesGcmDecrypt(const SymmetricKey& key, std::string_view envelope,
                                  std::string_view aad) {
  if (envelope.size() < kAesGcmIvBytes + kAesGcmTagBytes) {
    return Status::Corruption("GCM envelope has invalid length");
  }
  const auto* iv = reinterpret_cast<const uint8_t*>(envelope.data());
  const std::string_view ct =
      envelope.substr(kAesGcmIvBytes, envelope.size() - kAesGcmIvBytes - kAesGcmTagBytes);
  const std::string_view tag = envelope.substr(envelope.size() - kAesGcmTagBytes);

  if (UseGcmKernel()) {
    OBS_COUNTER_INC("crypto.gcm.dispatch.aesni");
    std::string out(ct.size(), '\0');
    if (!internal::AesGcmSimdDecrypt(key.data(), iv,
                                     reinterpret_cast<const uint8_t*>(aad.data()), aad.size(),
                                     reinterpret_cast<const uint8_t*>(ct.data()),
                                     ct.size(),
                                     reinterpret_cast<const uint8_t*>(tag.data()),
                                     reinterpret_cast<uint8_t*>(out.data()))) {
      return Status::Corruption("GCM tag check failed");
    }
    return out;
  }
  OBS_COUNTER_INC("crypto.gcm.dispatch.portable");
  return GcmDecryptPortable(key, iv, ct, tag, aad);
}

}  // namespace minicrypt
