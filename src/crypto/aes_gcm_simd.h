// Hardware AES-256-GCM kernel (AES-NI key schedule + CTR, PCLMUL GHASH).
// Internal to mc_crypto: crypto.cc dispatches here when the host has aes +
// pclmulqdq and the runtime SIMD level is not forced to scalar. The portable
// OpenSSL EVP path in crypto.cc is the oracle; tests/simd_kernels_test.cc
// asserts byte-identical envelopes for fixed IVs.

#ifndef MINICRYPT_SRC_CRYPTO_AES_GCM_SIMD_H_
#define MINICRYPT_SRC_CRYPTO_AES_GCM_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace minicrypt {
namespace internal {

// True when this binary carries the kernel (x86-64 build). Callers must also
// check AesGcmHardwareEnabled() for the runtime cpuid + override gate.
bool AesGcmSimdCompiled();

// ct must have room for n bytes, tag for 16. iv is exactly 12 bytes. `aad`
// (aad_len bytes, may be null when aad_len == 0) is authenticated but not
// encrypted, exactly as in the EVP oracle.
void AesGcmSimdEncrypt(const uint8_t key[32], const uint8_t iv[12],
                       const uint8_t* aad, size_t aad_len,
                       const uint8_t* pt, size_t n, uint8_t* ct, uint8_t tag[16]);

// Computes the expected tag for (iv, aad, ct) and writes the decryption to pt
// (n bytes). Returns false on tag mismatch; pt contents are then unspecified.
bool AesGcmSimdDecrypt(const uint8_t key[32], const uint8_t iv[12],
                       const uint8_t* aad, size_t aad_len,
                       const uint8_t* ct, size_t n, const uint8_t tag[16],
                       uint8_t* pt);

}  // namespace internal
}  // namespace minicrypt

#endif  // MINICRYPT_SRC_CRYPTO_AES_GCM_SIMD_H_
