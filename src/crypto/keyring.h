// Versioned key material for online rotation (docs/KEY_ROTATION.md).
//
// A Keyring wraps the customer's master key with a window of *key epochs*
// [retired_below, current]. Every epoch derives its own independent subkeys
// (epoch 0 reproduces the legacy single-key derivation byte-for-byte, so
// pre-rotation envelopes keep opening). Rotation announces a new current
// epoch, re-seals data under it, and finally retires everything below it —
// after which the old epochs' key material is unreachable through this
// keyring and opens of stragglers fail with a typed KeyUnavailable.
//
// Epoch *pins* are the drain barrier that makes retirement sound under
// concurrency: every seal captures a Pin on the epoch it seals with, released
// only once the resulting envelope has been durably written (or abandoned).
// Rotation waits for all pins below the target epoch to drain before its
// final verify pass, so no in-flight old-epoch envelope can land after the
// sweep that was supposed to re-seal it. This models the key-lease handshake
// a production KMS would run; in-process it is a refcount + condvar.
//
// All methods are thread-safe; share one Keyring across every client of a
// customer (std::shared_ptr), exactly as they already share the master key.

#ifndef MINICRYPT_SRC_CRYPTO_KEYRING_H_
#define MINICRYPT_SRC_CRYPTO_KEYRING_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/crypto/crypto.h"

namespace minicrypt {

class Keyring {
 public:
  // RAII lease on a key epoch: while any Pin on epoch e is alive,
  // WaitForDrainBelow(t) blocks for every t > e. Movable, not copyable.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept : ring_(other.ring_), epoch_(other.epoch_) {
      other.ring_ = nullptr;
    }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        Release();
        ring_ = other.ring_;
        epoch_ = other.epoch_;
        other.ring_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { Release(); }

    uint64_t epoch() const { return epoch_; }
    explicit operator bool() const { return ring_ != nullptr; }

   private:
    friend class Keyring;
    Pin(Keyring* ring, uint64_t epoch) : ring_(ring), epoch_(epoch) {}
    void Release();

    Keyring* ring_ = nullptr;
    uint64_t epoch_ = 0;
  };

  explicit Keyring(const SymmetricKey& master);

  // Convenience for the legacy single-key constructors: a fresh ring at
  // epoch 0, nothing retired — derivations match the pre-keyring code.
  static std::shared_ptr<Keyring> FromMaster(const SymmetricKey& master);

  // The raw customer key, for companions that derive their own subkeys
  // outside the epoch scheme (packID PRF, OPE, secondary-index keys — those
  // encrypt identifiers, not data at rest, and do not rotate with packs).
  const SymmetricKey& master() const { return master_; }

  uint64_t current_epoch() const;
  uint64_t retired_below() const;

  // Makes `epoch` the sealing epoch. Forward-only and idempotent: announcing
  // an epoch at or below the current one is a no-op, so replayed rotation
  // resumes are harmless.
  void AnnounceEpoch(uint64_t epoch);

  // Drops key material for every epoch < floor. After this, KeyFor on a
  // retired epoch fails with KeyUnavailable. InvalidArgument when floor
  // exceeds the current epoch (the sealing key must always stay available);
  // lowering the floor is a silent no-op (replayed resumes).
  Status RetireBelow(uint64_t floor);

  // The subkey for `purpose` under `epoch`. Epoch 0 derives exactly like the
  // legacy single key (master.Derive(purpose)); later epochs interpose a
  // per-epoch stage. KeyUnavailable outside [retired_below, current]:
  // a retired epoch is gone by design, a future epoch has not been announced
  // to this client yet.
  Result<SymmetricKey> KeyFor(uint64_t epoch, std::string_view purpose) const;

  // Leases the current epoch for an in-flight seal (see Pin).
  Pin PinCurrent();

  // Blocks until no Pin on any epoch < `epoch` remains, or the wall-clock
  // timeout expires; returns whether the drain completed. Single-threaded
  // callers hold no pins of their own at this point, so it returns
  // immediately (which keeps seed-replay deterministic).
  bool WaitForDrainBelow(uint64_t epoch, uint64_t timeout_millis);

 private:
  void ReleasePin(uint64_t epoch);

  const SymmetricKey master_;

  mutable std::mutex mu_;
  std::condition_variable drained_;
  uint64_t current_epoch_ = 0;
  uint64_t retired_below_ = 0;
  std::map<uint64_t, uint64_t> pin_counts_;  // epoch -> live pins
  // Derived-subkey memo: sealing hits KeyFor on every pack, and the HMAC
  // chain per derivation is measurable. Entries below the retirement floor
  // are erased (and their keys wiped by ~SymmetricKey) on RetireBelow.
  mutable std::map<std::pair<uint64_t, std::string>, SymmetricKey, std::less<>> derived_;
};

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_CRYPTO_KEYRING_H_
