#include "src/crypto/keyring.h"

#include <chrono>

#include "src/obs/metrics.h"

namespace minicrypt {

void Keyring::Pin::Release() {
  if (ring_ != nullptr) {
    ring_->ReleasePin(epoch_);
    ring_ = nullptr;
  }
}

Keyring::Keyring(const SymmetricKey& master) : master_(master) {}

std::shared_ptr<Keyring> Keyring::FromMaster(const SymmetricKey& master) {
  return std::make_shared<Keyring>(master);
}

uint64_t Keyring::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_epoch_;
}

uint64_t Keyring::retired_below() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retired_below_;
}

void Keyring::AnnounceEpoch(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch > current_epoch_) {
    current_epoch_ = epoch;
  }
}

Status Keyring::RetireBelow(uint64_t floor) {
  std::lock_guard<std::mutex> lock(mu_);
  if (floor > current_epoch_) {
    return Status::InvalidArgument("cannot retire the current sealing epoch");
  }
  if (floor <= retired_below_) {
    return Status::Ok();  // replayed resume
  }
  retired_below_ = floor;
  // Wipe the memoized subkeys of retired epochs: the whole point of
  // retirement is that this key material stops being reachable.
  for (auto it = derived_.begin(); it != derived_.end();) {
    it = it->first.first < floor ? derived_.erase(it) : std::next(it);
  }
  return Status::Ok();
}

Result<SymmetricKey> Keyring::KeyFor(uint64_t epoch, std::string_view purpose) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch < retired_below_) {
    OBS_COUNTER_INC("crypto.key_unavailable");
    return Status::KeyUnavailable("key epoch " + std::to_string(epoch) +
                                  " retired (floor " + std::to_string(retired_below_) + ")");
  }
  if (epoch > current_epoch_) {
    OBS_COUNTER_INC("crypto.key_unavailable");
    return Status::KeyUnavailable("key epoch " + std::to_string(epoch) +
                                  " not announced (current " +
                                  std::to_string(current_epoch_) + ")");
  }
  const auto key = std::make_pair(epoch, std::string(purpose));
  auto it = derived_.find(key);
  if (it != derived_.end()) {
    return it->second;
  }
  // Epoch 0 must reproduce the legacy derivation exactly so envelopes sealed
  // before keyrings existed keep opening; later epochs interpose one stage.
  const SymmetricKey derived =
      epoch == 0
          ? master_.Derive(purpose)
          : master_.Derive("epoch:" + std::to_string(epoch)).Derive(purpose);
  derived_.emplace(key, derived);
  return derived;
}

Keyring::Pin Keyring::PinCurrent() {
  std::lock_guard<std::mutex> lock(mu_);
  ++pin_counts_[current_epoch_];
  return Pin(this, current_epoch_);
}

void Keyring::ReleasePin(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pin_counts_.find(epoch);
  if (it != pin_counts_.end() && --it->second == 0) {
    pin_counts_.erase(it);
  }
  drained_.notify_all();
}

bool Keyring::WaitForDrainBelow(uint64_t epoch, uint64_t timeout_millis) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto drained = [&] {
    auto it = pin_counts_.begin();
    return it == pin_counts_.end() || it->first >= epoch;
  };
  // Wall-clock wait (not the simulated clock): pins are released by real OS
  // threads finishing real writes, which the simulated clock cannot see.
  // With no pins outstanding this returns without waiting at all.
  return drained_.wait_for(lock, std::chrono::milliseconds(timeout_millis), drained);
}

}  // namespace minicrypt
