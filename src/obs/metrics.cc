#include "src/obs/metrics.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace minicrypt {

namespace {

// Metric names are dotted identifiers, but escape defensively so ToJson always
// emits valid JSON whatever a caller registers.
void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out->append(buf);
}

}  // namespace

MetricsRegistry::MetricsRegistry() {
  // MC_OBS=0 turns all instrumentation off for overhead-sensitive runs.
  const char* env = std::getenv("MC_OBS");
  if (env != nullptr && std::strcmp(env, "0") == 0) {
    enabled_.store(false, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

void MetricsRegistry::RegisterDerivedGauge(std::string_view name,
                                           std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  derived_gauges_.emplace(std::string(name), std::move(fn));
}

LatencyHistogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<LatencyHistogram>()).first;
  }
  return it->second.get();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    const uint64_t value = counter->Value();
    if (value == 0) {
      continue;
    }
    if (!first) {
      out.push_back(',');
    }
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    out.append(std::to_string(value));
  }
  out.append("},\"gauges\":{");
  first = true;
  // Merge plain and derived gauges into one sorted section; a derived gauge
  // shadows a plain gauge of the same name.
  std::map<std::string_view, double> gauge_values;
  for (const auto& [name, gauge] : gauges_) {
    gauge_values[name] = gauge->Value();
  }
  for (const auto& [name, fn] : derived_gauges_) {
    gauge_values[name] = fn();
  }
  for (const auto& [name, value] : gauge_values) {
    if (value == 0.0) {
      continue;
    }
    if (!first) {
      out.push_back(',');
    }
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    AppendDouble(&out, value);
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const Histogram snap = histogram->Snapshot();
    if (snap.count() == 0) {
      continue;
    }
    if (!first) {
      out.push_back(',');
    }
    first = false;
    AppendJsonString(&out, name);
    out.append(":{\"count\":");
    out.append(std::to_string(snap.count()));
    out.append(",\"sum_us\":");
    out.append(std::to_string(snap.sum()));
    out.append(",\"mean_us\":");
    AppendDouble(&out, snap.Mean());
    out.append(",\"p50_us\":");
    AppendDouble(&out, snap.Percentile(0.50));
    out.append(",\"p95_us\":");
    AppendDouble(&out, snap.Percentile(0.95));
    out.append(",\"p99_us\":");
    AppendDouble(&out, snap.Percentile(0.99));
    out.append(",\"max_us\":");
    out.append(std::to_string(snap.Max()));
    out.push_back('}');
  }
  out.append("}}");
  return out;
}

}  // namespace minicrypt
