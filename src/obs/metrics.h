// Process-wide observability layer: a registry of named counters, gauges,
// and latency histograms, plus a scoped trace-span API (OBS_SPAN) that
// attributes per-operation time to named stages.
//
// Design goals (see docs/METRICS.md for the metric reference):
//  - Lock-free fast path. Counters and histograms are sharded over
//    cache-line-aligned atomics; threads hash to a shard, so concurrent
//    increments from a 12-thread bench driver never contend on one line.
//  - Negligible overhead when disabled. Every macro checks one relaxed
//    atomic bool; spans skip both clock reads when the registry is off.
//  - Stable pointers. Registration interns the metric once; call sites cache
//    the pointer in a function-local static, so the steady-state cost of a
//    counter bump is one relaxed fetch_add.
//  - Reuse of src/common/histogram.* bucket math: LatencyHistogram
//    accumulates per-bucket atomic counts and rebuilds a plain Histogram
//    (Histogram::FromBucketCounts) for percentile queries and JSON export.
//
// Metrics survive ResetAll() as registrations (values zeroed), which is what
// the bench harnesses use to scope a snapshot to one measured run.

#ifndef MINICRYPT_SRC_OBS_METRICS_H_
#define MINICRYPT_SRC_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/common/cpu_features.h"
#include "src/common/histogram.h"

namespace minicrypt {

// Shard count for per-thread striping. Power of two; 16 lines = 1 KB per
// counter, small enough to register dozens of counters freely.
inline constexpr uint32_t kObsShards = 16;

// Stable per-thread shard index (round-robin assignment at first use).
inline uint32_t ObsThreadShard() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kObsShards;
  return shard;
}

// Monotonic nanoseconds for span timing. Spans always measure wall time (the
// simulated Clock sleeps for real, so wall time is simulation time too).
inline uint64_t ObsNowNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Monotonic event counter (ops, bytes, retries). Add is one relaxed
// fetch_add on the calling thread's shard.
class Counter {
 public:
  void Add(uint64_t delta) {
    cells_[ObsThreadShard()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Cell& cell : cells_) {
      cell.v.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[kObsShards];
};

// Last-writer-wins instantaneous value (compression ratio, bytes in use).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Concurrent latency histogram: sharded atomic buckets over the exponential
// layout of src/common/histogram.*. Record is bucket math plus four relaxed
// atomic ops on the thread's shard; Snapshot merges shards into a plain
// Histogram for percentile queries.
class LatencyHistogram {
 public:
  void Record(uint64_t value_micros) {
    Shard& shard = shards_[ObsThreadShard()];
    const int bucket = Histogram::BucketFor(value_micros);
    shard.buckets[static_cast<size_t>(bucket)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value_micros, std::memory_order_relaxed);
    AtomicMin(shard.min, value_micros);
    AtomicMax(shard.max, value_micros);
  }

  Histogram Snapshot() const {
    uint64_t counts[Histogram::kBucketCount] = {};
    uint64_t sum = 0;
    uint64_t min = ~0ULL;
    uint64_t max = 0;
    for (const Shard& shard : shards_) {
      for (int b = 0; b < Histogram::kBucketCount; ++b) {
        counts[b] += shard.buckets[static_cast<size_t>(b)].load(std::memory_order_relaxed);
      }
      sum += shard.sum.load(std::memory_order_relaxed);
      min = std::min(min, shard.min.load(std::memory_order_relaxed));
      max = std::max(max, shard.max.load(std::memory_order_relaxed));
    }
    return Histogram::FromBucketCounts(counts, Histogram::kBucketCount, sum,
                                       min == ~0ULL ? 0 : min, max);
  }

  void Reset() {
    for (Shard& shard : shards_) {
      for (auto& bucket : shard.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
      shard.sum.store(0, std::memory_order_relaxed);
      shard.min.store(~0ULL, std::memory_order_relaxed);
      shard.max.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[Histogram::kBucketCount] = {};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{~0ULL};
    std::atomic<uint64_t> max{0};
  };

  static void AtomicMin(std::atomic<uint64_t>& slot, uint64_t v) {
    uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v < cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void AtomicMax(std::atomic<uint64_t>& slot, uint64_t v) {
    uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  Shard shards_[kObsShards];
};

// Process-wide registry. Getters intern by name and never invalidate returned
// pointers; ResetAll zeroes values but keeps registrations, so pointers cached
// in function-local statics stay valid for the process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  LatencyHistogram* GetHistogram(std::string_view name);

  // Registers a gauge whose value is computed on demand at snapshot time
  // (ToJson) — e.g. a ratio derived from two counters — so hot paths pay only
  // the counter adds and never a read-modify-write of a gauge. The first
  // registration under a name wins; a derived gauge shadows a plain gauge of
  // the same name in the snapshot. `fn` must be thread-safe and must not call
  // back into the registry (ToJson invokes it under the registry lock).
  void RegisterDerivedGauge(std::string_view name, std::function<double()> fn);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }

  // Zeroes every metric's value; registrations (and pointers) survive.
  void ResetAll();

  // One-line JSON snapshot:
  //   {"counters":{...},"gauges":{...},"histograms":{"name":{"count":...}}}
  // Histograms with count == 0 and counters with value == 0 are elided so
  // bench output stays readable. Keys are sorted (std::map iteration).
  std::string ToJson() const;

 private:
  MetricsRegistry();

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::function<double()>, std::less<>> derived_gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>> histograms_;
  std::atomic<bool> enabled_{true};
};

// RAII stage timer. Constructed through OBS_SPAN; records elapsed micros into
// the named latency histogram on destruction. When the registry is disabled
// at construction the span is inert (no clock reads, no record).
class ScopedSpan {
 public:
  explicit ScopedSpan(LatencyHistogram* histogram)
      : histogram_(MetricsRegistry::Instance().enabled() ? histogram : nullptr),
        start_nanos_(histogram_ != nullptr ? ObsNowNanos() : 0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (histogram_ != nullptr) {
      histogram_->Record((ObsNowNanos() - start_nanos_) / 1000);
    }
  }

 private:
  LatencyHistogram* histogram_;
  uint64_t start_nanos_;
};

}  // namespace minicrypt

// --- Instrumentation macros ---------------------------------------------------
//
// All take a string literal name (docs/METRICS.md lists every name in use).
// The metric pointer is interned once per call site via a function-local
// static; the enabled check is one relaxed load.
//
// The value argument is evaluated exactly once, BEFORE the enabled check, so
// side-effecting expressions (e.g. a simulated-latency charge) still run when
// the registry is disabled — only the record itself is gated. Keep the value
// expression cheap; disabled-mode overhead is its evaluation plus one load.

#define OBS_INTERNAL_CONCAT2(a, b) a##b
#define OBS_INTERNAL_CONCAT(a, b) OBS_INTERNAL_CONCAT2(a, b)

#define OBS_COUNTER_ADD(name, delta)                                                       \
  do {                                                                                     \
    static ::minicrypt::Counter* OBS_INTERNAL_CONCAT(obs_counter_, __LINE__) =             \
        ::minicrypt::MetricsRegistry::Instance().GetCounter(name);                         \
    const uint64_t OBS_INTERNAL_CONCAT(obs_delta_, __LINE__) = (delta);                    \
    if (::minicrypt::MetricsRegistry::Instance().enabled()) {                              \
      OBS_INTERNAL_CONCAT(obs_counter_, __LINE__)->Add(OBS_INTERNAL_CONCAT(obs_delta_,     \
                                                                           __LINE__));     \
    }                                                                                      \
  } while (0)

#define OBS_COUNTER_INC(name) OBS_COUNTER_ADD(name, 1)

#define OBS_GAUGE_SET(name, value)                                                         \
  do {                                                                                     \
    static ::minicrypt::Gauge* OBS_INTERNAL_CONCAT(obs_gauge_, __LINE__) =                 \
        ::minicrypt::MetricsRegistry::Instance().GetGauge(name);                           \
    const double OBS_INTERNAL_CONCAT(obs_value_, __LINE__) = (value);                      \
    if (::minicrypt::MetricsRegistry::Instance().enabled()) {                              \
      OBS_INTERNAL_CONCAT(obs_gauge_, __LINE__)->Set(OBS_INTERNAL_CONCAT(obs_value_,       \
                                                                         __LINE__));       \
    }                                                                                      \
  } while (0)

#define OBS_HISTOGRAM_RECORD(name, micros)                                                 \
  do {                                                                                     \
    static ::minicrypt::LatencyHistogram* OBS_INTERNAL_CONCAT(obs_hist_, __LINE__) =       \
        ::minicrypt::MetricsRegistry::Instance().GetHistogram(name);                       \
    const uint64_t OBS_INTERNAL_CONCAT(obs_micros_, __LINE__) = (micros);                  \
    if (::minicrypt::MetricsRegistry::Instance().enabled()) {                              \
      OBS_INTERNAL_CONCAT(obs_hist_, __LINE__)->Record(OBS_INTERNAL_CONCAT(obs_micros_,    \
                                                                           __LINE__));     \
    }                                                                                      \
  } while (0)

// Times the enclosing scope into histogram `name`, e.g. OBS_SPAN("pack.decrypt").
#define OBS_SPAN(name)                                                                     \
  static ::minicrypt::LatencyHistogram* OBS_INTERNAL_CONCAT(obs_span_hist_, __LINE__) =    \
      ::minicrypt::MetricsRegistry::Instance().GetHistogram(name);                         \
  ::minicrypt::ScopedSpan OBS_INTERNAL_CONCAT(obs_span_, __LINE__)(                        \
      OBS_INTERNAL_CONCAT(obs_span_hist_, __LINE__))

namespace minicrypt {

// Bumps codec.dispatch.{scalar,sse42,avx2} for one dispatched hot-path kernel
// invocation (docs/METRICS.md). Lives here rather than in cpu_features.h so
// src/common stays below the metrics registry in the dependency order.
inline void RecordKernelDispatch(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      OBS_COUNTER_INC("codec.dispatch.scalar");
      break;
    case SimdLevel::kSse42:
      OBS_COUNTER_INC("codec.dispatch.sse42");
      break;
    case SimdLevel::kAvx2:
      OBS_COUNTER_INC("codec.dispatch.avx2");
      break;
  }
}

}  // namespace minicrypt

#endif  // MINICRYPT_SRC_OBS_METRICS_H_
