// Quickstart: bring up a cluster, create a MiniCrypt client with a customer
// key, and use the four-call API (put / get / get-range / delete). The server
// side only ever sees encrypted packs.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/core/generic_client.h"
#include "src/kvstore/cluster.h"

using minicrypt::Cluster;
using minicrypt::ClusterOptions;
using minicrypt::GenericClient;
using minicrypt::MiniCryptOptions;
using minicrypt::SymmetricKey;

int main() {
  // 1. The hosting side: a 3-node store with replication factor 3. In a real
  //    deployment this is the cloud provider's cluster; here it runs
  //    in-process.
  ClusterOptions cluster_options;
  cluster_options.node_count = 3;
  cluster_options.replication_factor = 3;
  cluster_options.rtt_micros = 0;  // no simulated network for the demo
  Cluster cluster(cluster_options);

  // 2. The customer side: a symmetric key that never leaves the clients.
  const SymmetricKey key = SymmetricKey::FromSeed("quickstart-demo-secret");

  MiniCryptOptions options;
  options.table = "users";
  options.pack_rows = 50;  // ~90% of the achievable compression (paper fig. 2)

  GenericClient client(&cluster, options, key);
  if (!client.CreateTable().ok()) {
    std::fprintf(stderr, "create table failed\n");
    return 1;
  }

  // 3. Writes. Each put lands inside an encrypted pack shared with ~49
  //    neighbouring keys; the update-if protocol keeps concurrent writers
  //    from clobbering each other.
  for (uint64_t user_id = 1000; user_id < 1100; ++user_id) {
    const std::string profile =
        "name=user" + std::to_string(user_id) + ";plan=premium;region=eu-west";
    if (!client.Put(user_id, profile).ok()) {
      std::fprintf(stderr, "put %llu failed\n", static_cast<unsigned long long>(user_id));
      return 1;
    }
  }

  // 4. Point read.
  auto value = client.Get(1042);
  if (!value.ok()) {
    std::fprintf(stderr, "get failed: %s\n", value.status().ToString().c_str());
    return 1;
  }
  std::printf("get(1042)  -> %s\n", value->c_str());

  // 5. Range read (common for time-series keys).
  auto range = client.GetRange(1040, 1049);
  if (!range.ok()) {
    std::fprintf(stderr, "range failed\n");
    return 1;
  }
  std::printf("get(1040, 1049) -> %zu rows\n", range->size());

  // 6. Delete.
  if (!client.Delete(1042).ok()) {
    std::fprintf(stderr, "delete failed\n");
    return 1;
  }
  std::printf("after delete, get(1042) -> %s\n",
              client.Get(1042).status().ToString().c_str());

  // 7. What the server actually stores: encrypted envelopes, a fraction of
  //    the plaintext size.
  std::printf("server-side footprint: %zu bytes (plaintext was ~%zu)\n",
              cluster.TableAtRestBytes("users") + 0, size_t{100} * 60);
  return 0;
}
