// Pack-size tuning example (paper §8.3): feed the tuner a representative
// dataset and read workload; it measures throughput at several candidate pack
// sizes and reports both the empirical optimum and the "smallest pack size
// whose compressed data fits in memory" heuristic.
//
// Build & run:  ./build/examples/pack_tuning

#include <cstdio>
#include <memory>

#include "src/common/random.h"
#include "src/core/tuner.h"
#include "src/kvstore/cluster.h"
#include "src/workload/datasets.h"

using minicrypt::Cluster;
using minicrypt::ClusterOptions;
using minicrypt::MakeDataset;
using minicrypt::MaterializeRows;
using minicrypt::MediaProfile;
using minicrypt::MiniCryptOptions;
using minicrypt::PackSizeTuner;
using minicrypt::Rng;
using minicrypt::SymmetricKey;

int main() {
  const SymmetricKey key = SymmetricKey::FromSeed("tuning-demo");

  // Representative sample: ~4 MB of Conviva-like rows; server RAM budget
  // ~1 MB per node, so small packs (poor compression) will not fit.
  auto dataset = MakeDataset("conviva", 11);
  const auto rows = MaterializeRows(*dataset, 3600);
  Rng rng(5);
  std::vector<uint64_t> read_keys;
  for (int i = 0; i < 20000; ++i) {
    read_keys.push_back(rng.Uniform(rows.size()));
  }

  MiniCryptOptions options;
  options.hash_partitions = 4;

  PackSizeTuner::Config config;
  config.candidate_pack_rows = {1, 10, 50, 200};
  config.client_threads = 4;
  config.run_micros = 400'000;

  auto make_cluster = [] {
    ClusterOptions o;
    o.node_count = 3;
    o.replication_factor = 3;
    o.block_cache_bytes = 512 * 1024;
    o.media = MediaProfile::Disk(/*latency_scale=*/0.05);
    o.latency_scale = 0.05;
    return std::make_unique<Cluster>(o);
  };

  PackSizeTuner tuner(options, key, config);
  auto report = tuner.Run(make_cluster, rows, read_keys);
  if (!report.ok()) {
    std::fprintf(stderr, "tuner failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("%-10s %-14s %-10s %-12s\n", "pack_rows", "ops/s", "ratio", "atrest_KB");
  for (const auto& p : report->points) {
    std::printf("%-10zu %-14.0f %-10.2f %-12.0f\n", p.pack_rows, p.throughput_ops_s,
                p.compression_ratio, static_cast<double>(p.at_rest_bytes) / 1024.0);
  }
  std::printf("\nempirical best pack size : %zu rows\n", report->best_pack_rows);
  std::printf("fits-in-memory heuristic : %zu rows\n", report->heuristic_pack_rows);
  return 0;
}
