// Security-oriented example: two tenants share one hosting cluster, each with
// its own key; plus the two §2.5 mitigations — padding tiers that quantize
// pack sizes, and PRF-encrypted packIDs for sensitive keys.
//
// Build & run:  ./build/examples/multi_tenant_packs

#include <cstdio>
#include <set>

#include "src/core/generic_client.h"
#include "src/kvstore/cluster.h"
#include "src/workload/datasets.h"

using minicrypt::Cluster;
using minicrypt::ClusterOptions;
using minicrypt::GenericClient;
using minicrypt::MakeDataset;
using minicrypt::MiniCryptOptions;
using minicrypt::PaddingTiers;
using minicrypt::PartitionLabel;
using minicrypt::SymmetricKey;

int main() {
  ClusterOptions cluster_options;
  cluster_options.node_count = 3;
  cluster_options.replication_factor = 3;
  cluster_options.rtt_micros = 0;
  Cluster cluster(cluster_options);

  // --- Tenant isolation: separate keys, separate tables -----------------------
  const SymmetricKey alpha_key = SymmetricKey::FromSeed("tenant-alpha-secret");
  const SymmetricKey beta_key = SymmetricKey::FromSeed("tenant-beta-secret");

  MiniCryptOptions alpha;
  alpha.table = "alpha_data";
  MiniCryptOptions beta;
  beta.table = "beta_data";

  GenericClient alpha_client(&cluster, alpha, alpha_key);
  GenericClient beta_client(&cluster, beta, beta_key);
  (void)alpha_client.CreateTable();
  (void)beta_client.CreateTable();
  (void)alpha_client.Put(1, "alpha confidential record");
  (void)beta_client.Put(1, "beta confidential record");

  std::printf("tenant alpha reads its own row: %s\n", alpha_client.Get(1)->c_str());
  // A client holding the wrong key cannot decrypt the other tenant's packs.
  GenericClient intruder(&cluster, beta, alpha_key);
  std::printf("alpha's key against beta's table: %s\n",
              intruder.Get(1).status().ToString().c_str());

  // --- Padding tiers: pack sizes stop leaking content size --------------------
  MiniCryptOptions padded = alpha;
  padded.table = "alpha_padded";
  padded.padding = PaddingTiers::SmallMediumLarge(4 * 1024, 16 * 1024, 64 * 1024);
  GenericClient padded_client(&cluster, padded, alpha_key);
  (void)padded_client.CreateTable();

  auto wiki = MakeDataset("wiki", 3);
  std::vector<std::pair<uint64_t, std::string>> rows;
  for (uint64_t k = 0; k < 300; ++k) {
    rows.emplace_back(k, wiki->Row(k));
  }
  (void)padded_client.BulkLoad(rows);

  std::set<size_t> visible_sizes;
  for (int p = 0; p < padded.hash_partitions; ++p) {
    auto stored = cluster.ReadRange("alpha_padded", PartitionLabel(p), "",
                                    std::string(40, '\xff'));
    if (stored.ok()) {
      for (const auto& [id, row] : *stored) {
        visible_sizes.insert(row.cells.at("v").value.size());
      }
    }
  }
  std::printf("padding tiers: the server observes only %zu distinct pack sizes\n",
              visible_sizes.size());

  // --- Encrypted packIDs: key values themselves are sensitive ------------------
  MiniCryptOptions hidden = alpha;
  hidden.table = "alpha_hidden_keys";
  hidden.encrypt_pack_ids = true;     // GENERIC mode only; no range queries
  hidden.packid_bucket_width = 50;
  GenericClient hidden_client(&cluster, hidden, alpha_key);
  (void)hidden_client.CreateTable();
  (void)hidden_client.Put(123456789, "value under an encrypted packID");
  auto secret = hidden_client.Get(123456789);
  std::printf("lookup through PRF-encrypted packIDs: %s\n",
              secret.ok() ? secret->c_str() : secret.status().ToString().c_str());
  std::printf("range query in this mode is refused: %s\n",
              hidden_client.GetRange(0, 10).status().ToString().c_str());

  // --- OPE packIDs: sensitive keys *with* range queries -------------------------
  // The §2.5 alternative: order-preserving encryption keeps the floor/range
  // machinery working on encrypted packIDs, revealing only their order.
  MiniCryptOptions ranged = alpha;
  ranged.table = "alpha_ope_keys";
  ranged.ope_pack_ids = true;
  GenericClient ope_client(&cluster, ranged, alpha_key);
  (void)ope_client.CreateTable();
  for (uint64_t k = 500; k < 520; ++k) {
    (void)ope_client.Put(k, "ope-value-" + std::to_string(k));
  }
  auto ope_range = ope_client.GetRange(505, 514);
  std::printf("range over OPE-encrypted packIDs: %zu rows (order leaked, values hidden)\n",
              ope_range.ok() ? ope_range->size() : 0);
  return 0;
}
