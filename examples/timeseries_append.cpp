// APPEND-mode example: a sensor fleet streams timestamped readings (the
// paper's motivating time-series workload, §6). Appends are single encrypted
// row inserts — nearly as fast as the raw store — while background mergers
// fold closed epochs into compressed packs and the EM service coordinates
// epochs, assignments, and failover.
//
// Build & run:  ./build/examples/timeseries_append

#include <chrono>
#include <cstdio>
#include <thread>

#include "src/core/append/append_client.h"
#include "src/core/append/em_service.h"
#include "src/kvstore/cluster.h"
#include "src/workload/datasets.h"

using minicrypt::AppendClient;
using minicrypt::Cluster;
using minicrypt::ClusterOptions;
using minicrypt::EmService;
using minicrypt::MakeDataset;
using minicrypt::MiniCryptOptions;
using minicrypt::SymmetricKey;

int main() {
  ClusterOptions cluster_options;
  cluster_options.node_count = 3;
  cluster_options.replication_factor = 3;
  cluster_options.rtt_micros = 0;
  Cluster cluster(cluster_options);

  const SymmetricKey key = SymmetricKey::FromSeed("sensor-fleet-secret");

  MiniCryptOptions options;
  options.table = "sensor_readings";
  options.pack_rows = 50;
  options.epoch_micros = 500'000;   // short epochs so the demo merges quickly
  options.t_delta_micros = 50'000;  // bound on out-of-order arrival
  options.t_drift_micros = 50'000;
  options.merge_period_micros = 100'000;
  options.heartbeat_micros = 100'000;
  if (!options.Validate().ok()) {
    std::fprintf(stderr, "bad options\n");
    return 1;
  }

  // The EM service runs server-side but is only a client of the store: it
  // advances the global epoch and assigns merge work.
  EmService em(&cluster, options, "em-replica-0");
  if (!em.Bootstrap().ok() || !em.Tick().ok()) {
    std::fprintf(stderr, "EM bootstrap failed\n");
    return 1;
  }
  em.Start(/*period_micros=*/100'000);

  // One ingesting client with live heartbeat + merger threads.
  AppendClient ingest(&cluster, options, key, "ingest-0");
  if (!ingest.Register().ok()) {
    std::fprintf(stderr, "client registration failed\n");
    return 1;
  }
  ingest.Start();

  // Stream readings with microsecond-timestamp-like keys for ~2.5 seconds.
  auto gas = MakeDataset("gas", 7);
  uint64_t key_counter = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(2500);
  while (std::chrono::steady_clock::now() < deadline) {
    for (int burst = 0; burst < 50; ++burst) {
      if (!ingest.Put(key_counter, gas->Row(key_counter)).ok()) {
        std::fprintf(stderr, "append failed\n");
        return 1;
      }
      ++key_counter;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Let the pipeline drain one more epoch, then look at what happened.
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  em.Stop();
  ingest.Stop();

  std::printf("appended %llu readings\n", static_cast<unsigned long long>(key_counter));
  std::printf("merged into packs: %llu keys across %llu packs\n",
              static_cast<unsigned long long>(ingest.stats().keys_merged.load()),
              static_cast<unsigned long long>(ingest.stats().packs_written.load()));
  std::printf("epochs merged=%llu deleted=%llu\n",
              static_cast<unsigned long long>(ingest.stats().epochs_merged.load()),
              static_cast<unsigned long long>(ingest.stats().epochs_deleted.load()));

  // Reads see every key regardless of which side of the pipeline holds it.
  int found = 0;
  for (uint64_t k = 0; k < key_counter; k += 97) {
    if (ingest.Get(k).ok()) {
      ++found;
    }
  }
  std::printf("spot-checked %d keys across packs + raw epochs: all readable=%s\n", found,
              found == static_cast<int>((key_counter + 96) / 97) ? "yes" : "NO");
  return 0;
}
